package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"spardl/internal/simnet"
	"spardl/internal/sparsecoll"
)

var unit = simnet.Profile{Name: "unit", Alpha: 1, Beta: 1}

func zeroCompCost(t *testing.T) {
	t.Helper()
	saved := sparsecoll.DefaultCompCost
	sparsecoll.DefaultCompCost = sparsecoll.CompCost{}
	t.Cleanup(func() { sparsecoll.DefaultCompCost = saved })
}

func makeGradients(iters, p, n int, seed int64) [][][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][][]float32, iters)
	for it := range out {
		out[it] = make([][]float32, p)
		for w := range out[it] {
			g := make([]float32, n)
			for i := range g {
				g[i] = float32(rng.NormFloat64())
			}
			out[it][w] = g
		}
	}
	return out
}

func runSparDL(t *testing.T, p, n, k, iters int, seed int64, opts Options) (outs [][][]float32, reducers []*SparDL, rep *simnet.Report) {
	t.Helper()
	grads := makeGradients(iters, p, n, seed)
	outs = make([][][]float32, iters)
	for it := range outs {
		outs[it] = make([][]float32, p)
	}
	reducers = make([]*SparDL, p)
	rep = simnet.Run(p, unit, func(rank int, ep *simnet.Endpoint) {
		r, err := New(p, rank, n, k, opts)
		if err != nil {
			panic(err)
		}
		reducers[rank] = r
		for it := 0; it < iters; it++ {
			outs[it][rank] = r.Reduce(ep, grads[it][rank])
			ep.SyncClock()
		}
	})
	return outs, reducers, rep
}

func assertConsistent(t *testing.T, outs [][][]float32) {
	t.Helper()
	for it, perWorker := range outs {
		ref := perWorker[0]
		for w := 1; w < len(perWorker); w++ {
			if !reflect.DeepEqual(perWorker[w], ref) {
				for i := range ref {
					if perWorker[w][i] != ref[i] {
						t.Fatalf("iter %d: worker %d diverges at index %d: %g vs %g",
							it, w, i, perWorker[w][i], ref[i])
					}
				}
			}
		}
	}
}

// conservationGap computes injected − synchronized − leftover gradient mass
// across the whole run; GRES must keep it at float-noise level.
func conservationGap(p, n, iters int, seed int64, outs [][][]float32, reducers []*SparDL) float64 {
	grads := makeGradients(iters, p, n, seed)
	var injected, synced, leftover float64
	for it := 0; it < iters; it++ {
		for w := 0; w < p; w++ {
			for _, v := range grads[it][w] {
				injected += float64(v)
			}
		}
		for _, v := range outs[it][0] {
			synced += float64(v)
		}
	}
	for _, r := range reducers {
		for _, v := range r.Residual() {
			leftover += float64(v)
		}
	}
	return injected - synced - leftover
}

func TestSendBagsMatchesPaperExample(t *testing.T) {
	// Section III-B, Example 1: six workers → preservation block plus bags
	// {1}, {2,3} and the truncated last bag {4,5} (E = 6 − 4 = 2), given as
	// relative offsets from the preservation block.
	got := sendBags(6)
	want := [][]int{{1}, {2, 3}, {4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sendBags(6) = %v, want %v", got, want)
	}
	if got := sendBags(8); !reflect.DeepEqual(got, [][]int{{1}, {2, 3}, {4, 5, 6, 7}}) {
		t.Fatalf("sendBags(8) = %v", got)
	}
	if got := sendBags(2); !reflect.DeepEqual(got, [][]int{{1}}) {
		t.Fatalf("sendBags(2) = %v", got)
	}
	if sendBags(1) != nil {
		t.Fatal("sendBags(1) should be nil")
	}
	// All offsets 1..m-1 must appear exactly once.
	for m := 2; m <= 33; m++ {
		seen := map[int]bool{}
		for _, bag := range sendBags(m) {
			for _, r := range bag {
				if r < 1 || r >= m || seen[r] {
					t.Fatalf("m=%d: bad or duplicate offset %d", m, r)
				}
				seen[r] = true
			}
		}
		if len(seen) != m-1 {
			t.Fatalf("m=%d: %d offsets, want %d", m, len(seen), m-1)
		}
	}
}

func TestSparDLConsistencyAllWorkerCounts(t *testing.T) {
	// SRS must work for any number of workers (the paper's headline
	// structural claim), unlike recursive-doubling methods.
	for _, p := range []int{2, 3, 5, 6, 8, 11, 14} {
		const n, k, iters = 1400, 140, 3
		outs, _, _ := runSparDL(t, p, n, k, iters, int64(p), Options{})
		assertConsistent(t, outs)
	}
}

func TestSparDLConservationGRES(t *testing.T) {
	for _, p := range []int{3, 6, 14} {
		const n, k, iters, seed = 1400, 140, 4, 21
		outs, reds, _ := runSparDL(t, p, n, k, iters, seed, Options{})
		gap := conservationGap(p, n, iters, seed, outs, reds)
		if math.Abs(gap) > 1e-2 {
			t.Fatalf("P=%d: GRES conservation gap %g", p, gap)
		}
	}
}

func TestSparDLTable1CostD1(t *testing.T) {
	zeroCompCost(t)
	// Eq. 4: 2⌈log₂P⌉ rounds and 4k(P-1)/P wire elements (×4 bytes each).
	for _, p := range []int{4, 7, 14} {
		n := 200 * p
		k := 10 * p // k/P = 10 entries per block, every block saturates
		_, _, rep := runSparDL(t, p, n, k, 1, 3, Options{})
		if want := 2 * ceilLog2(p); rep.MaxRounds() != want {
			t.Fatalf("P=%d rounds=%d want %d", p, rep.MaxRounds(), want)
		}
		if want := int64(16 * k * (p - 1) / p); rep.MaxBytesRecv() != want {
			t.Fatalf("P=%d bytes=%d want %d", p, rep.MaxBytesRecv(), want)
		}
	}
}

func TestSparDLRSAGConsistencyAndConservation(t *testing.T) {
	for _, tc := range []struct{ p, d int }{{8, 2}, {8, 4}, {14, 2}, {12, 4}} {
		const n, k, iters = 1680, 168, 3
		seed := int64(30 + tc.d)
		opts := Options{Teams: tc.d, Variant: RSAG}
		outs, reds, _ := runSparDL(t, tc.p, n, k, iters, seed, opts)
		assertConsistent(t, outs)
		gap := conservationGap(tc.p, n, iters, seed, outs, reds)
		if math.Abs(gap) > 1e-2 {
			t.Fatalf("P=%d d=%d: conservation gap %g", tc.p, tc.d, gap)
		}
	}
}

func TestSparDLRSAGCost(t *testing.T) {
	zeroCompCost(t)
	// Eq. 7: (2⌈log₂(P/d)⌉ + log₂d)α and 2k((2P-2d)/P + (d/P)log₂d)β.
	for _, tc := range []struct{ p, d int }{{8, 2}, {8, 4}, {14, 2}} {
		p, d := tc.p, tc.d
		m := p / d
		n := 200 * m
		k := 10 * m * d // blockK = dk/P = 10d exactly
		_, _, rep := runSparDL(t, p, n, k, 1, 4, Options{Teams: d, Variant: RSAG})
		if want := 2*ceilLog2(m) + ceilLog2(d); rep.MaxRounds() != want {
			t.Fatalf("P=%d d=%d rounds=%d want %d", p, d, rep.MaxRounds(), want)
		}
		blockK := d * k / p
		wantBytes := int64(8*blockK*(m-1)*2 + 8*blockK*ceilLog2(d))
		if rep.MaxBytesRecv() != wantBytes {
			t.Fatalf("P=%d d=%d bytes=%d want %d", p, d, rep.MaxBytesRecv(), wantBytes)
		}
	}
}

func TestSparDLBSAGConsistencyAndConservation(t *testing.T) {
	for _, tc := range []struct{ p, d int }{{6, 3}, {14, 7}, {14, 14}, {12, 6}, {12, 3}, {14, 2}} {
		const n, k, iters = 1680, 168, 4
		seed := int64(50 + tc.d)
		opts := Options{Teams: tc.d, Variant: BSAG}
		outs, reds, _ := runSparDL(t, tc.p, n, k, iters, seed, opts)
		assertConsistent(t, outs)
		gap := conservationGap(tc.p, n, iters, seed, outs, reds)
		if math.Abs(gap) > 1e-2 {
			t.Fatalf("P=%d d=%d: conservation gap %g", tc.p, tc.d, gap)
		}
	}
}

func TestSparDLBSAGRecordsNt(t *testing.T) {
	const p, d, n, k, iters = 6, 3, 1200, 120, 5
	_, reds, _ := runSparDL(t, p, n, k, iters, 60, Options{Teams: d, Variant: BSAG})
	for _, r := range reds {
		nts := r.BsagCounts()
		if len(nts) != iters {
			t.Fatalf("recorded %d N_t values, want %d", len(nts), iters)
		}
		lo, hi := k/p, d*k/p
		for _, nt := range nts {
			// N_t is the union of d chunks of ≤h ≤ dk/P entries each; it can
			// reach d·h but must stay within [1, d·dk/P].
			if nt < 1 || nt > d*hi {
				t.Fatalf("N_t=%d outside sane range [1, %d] (h range [%d,%d])", nt, d*hi, lo, hi)
			}
		}
	}
}

func TestSparDLEagerMode(t *testing.T) {
	const p, n, k, iters, seed = 6, 1200, 120, 3, 70
	outs, reds, _ := runSparDL(t, p, n, k, iters, seed, Options{Eager: true})
	assertConsistent(t, outs)
	gap := conservationGap(p, n, iters, seed, outs, reds)
	if math.Abs(gap) > 1e-2 {
		t.Fatalf("eager conservation gap %g", gap)
	}
}

func TestPRESAndLRESLoseMass(t *testing.T) {
	// The ablations must actually drop the residual classes they claim to
	// drop: PRES loses in-procedure mass, LRES loses in-procedure and
	// end-procedure mass. Measure |conservation gap| ordering.
	const p, n, k, iters, seed = 6, 1200, 60, 4, 71
	gaps := map[ResidualMode]float64{}
	for _, mode := range []ResidualMode{GRES, PRES, LRES} {
		outs, reds, _ := runSparDL(t, p, n, k, iters, seed, Options{Residual: mode})
		assertConsistent(t, outs)
		gaps[mode] = math.Abs(conservationGap(p, n, iters, seed, outs, reds))
	}
	if gaps[GRES] > 1e-2 {
		t.Fatalf("GRES gap %g should be ≈0", gaps[GRES])
	}
	if gaps[PRES] < 1e-3 {
		t.Fatalf("PRES gap %g should be materially > 0", gaps[PRES])
	}
	if gaps[LRES] < 1e-3 {
		t.Fatalf("LRES gap %g should be materially > 0", gaps[LRES])
	}
}

// The negotiated and encoded transports must not change any computed
// value — only the byte accounting. Both must keep workers consistent,
// conserve mass under GRES, and (at realistic sparsity) charge strictly
// fewer bytes than the COO baseline; encoded must charge exactly what
// negotiated predicts, since it materializes the same buffers.
func TestSparDLWireModes(t *testing.T) {
	configs := []Options{
		{},
		{Teams: 2, Variant: RSAG},
		{Teams: 3, Variant: BSAG},
	}
	for _, base := range configs {
		const p, n, k, iters, seed = 6, 24000, 240, 3, 77 // k/n = 1e-2
		baseOpts := base
		baseOpts.Wire = WireCOO
		outsCOO, _, repCOO := runSparDL(t, p, n, k, iters, seed, baseOpts)

		var repNeg *simnet.Report
		for _, mode := range []WireMode{WireNegotiated, WireEncoded} {
			opts := base
			opts.Wire = mode
			outs, reds, rep := runSparDL(t, p, n, k, iters, seed, opts)
			assertConsistent(t, outs)
			if gap := conservationGap(p, n, iters, seed, outs, reds); math.Abs(gap) > 1e-2 {
				t.Fatalf("%+v: conservation gap %g", opts, gap)
			}
			// Identical math: the synchronized gradients must match the COO
			// run bit-for-bit.
			for it := range outs {
				if !reflect.DeepEqual(outs[it][0], outsCOO[it][0]) {
					t.Fatalf("%+v: wire mode changed the computed gradient at iter %d", opts, it)
				}
			}
			if mode == WireNegotiated {
				repNeg = rep
				if rep.MaxBytesRecv() >= repCOO.MaxBytesRecv() {
					t.Fatalf("%+v: negotiated bytes %d not below COO %d",
						opts, rep.MaxBytesRecv(), repCOO.MaxBytesRecv())
				}
			} else {
				for w := range rep.PerWorker {
					if rep.PerWorker[w].BytesRecv != repNeg.PerWorker[w].BytesRecv {
						t.Fatalf("%+v: encoded bytes %d != negotiated accounting %d at worker %d",
							opts, rep.PerWorker[w].BytesRecv, repNeg.PerWorker[w].BytesRecv, w)
					}
				}
			}
		}
	}
}

func TestSparDLNames(t *testing.T) {
	cases := []struct {
		opts Options
		p    int
		want string
	}{
		{Options{}, 14, "SparDL"},
		{Options{Teams: 2}, 14, "SparDL(R-SAG,d=2)"},
		{Options{Teams: 7}, 14, "SparDL(B-SAG,d=7)"},
		{Options{Teams: 2, Variant: BSAG}, 14, "SparDL(B-SAG,d=2)"},
		{Options{Residual: PRES}, 14, "SparDL-PRES"},
		{Options{Residual: LRES}, 14, "SparDL-LRES"},
		{Options{Eager: true}, 14, "SparDL-eager"},
		{Options{Wire: WireNegotiated}, 14, "SparDL+negotiated"},
		{Options{Teams: 2, Wire: WireEncoded}, 14, "SparDL(R-SAG,d=2)+encoded"},
	}
	for _, tc := range cases {
		r, err := New(tc.p, 0, 1400, 140, tc.opts)
		if err != nil {
			t.Fatalf("%+v: %v", tc.opts, err)
		}
		if r.Name() != tc.want {
			t.Fatalf("Name() = %q, want %q", r.Name(), tc.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(14, 0, 100, 10, Options{Teams: 3}); err == nil {
		t.Fatal("d=3 must not divide P=14")
	}
	if _, err := New(12, 0, 100, 10, Options{Teams: 3, Variant: RSAG}); err == nil {
		t.Fatal("forced R-SAG with d=3 must fail")
	}
	if _, err := New(12, 0, 100, 10, Options{Teams: 3}); err != nil {
		t.Fatalf("auto variant with d=3 should pick B-SAG: %v", err)
	}
	if _, err := New(4, 0, 100, 0, Options{}); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := New(4, 0, 100, 101, Options{}); err == nil {
		t.Fatal("k>n must fail")
	}
	if _, err := New(4, 5, 100, 10, Options{}); err == nil {
		t.Fatal("rank out of range must fail")
	}
}

// Property test: random legal configurations keep workers consistent and
// (under GRES) conserve gradient mass.
func TestSparDLPropertyRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		p := 2 + rng.Intn(13)
		divisors := []int{1}
		for d := 2; d <= p; d++ {
			if p%d == 0 {
				divisors = append(divisors, d)
			}
		}
		d := divisors[rng.Intn(len(divisors))]
		n := 400 + rng.Intn(1600)
		k := p + rng.Intn(n/4)
		seed := rng.Int63()
		opts := Options{Teams: d}
		iters := 2 + rng.Intn(2)
		outs, reds, _ := runSparDL(t, p, n, k, iters, seed, opts)
		assertConsistent(t, outs)
		gap := conservationGap(p, n, iters, seed, outs, reds)
		if math.Abs(gap) > 0.05 {
			t.Fatalf("trial %d (P=%d d=%d n=%d k=%d): conservation gap %g",
				trial, p, d, n, k, gap)
		}
	}
}

func ceilLog2(p int) int {
	l := 0
	for 1<<l < p {
		l++
	}
	return l
}
