package core

import (
	"spardl/internal/collective"
	"spardl/internal/comm"
	"spardl/internal/sparse"
	"spardl/internal/sparsecoll"
)

// runRSAG synchronizes the d teams by recursive doubling (Section III-D,
// case "d is a power of 2"). At step t this worker exchanges its reduced
// block with the same-position worker of the team at distance 2^t, sums,
// and selects the top L(k,d,P) entries. Cost: log₂d·α + 2(dk/P)log₂d·β
// (Eq. 5).
//
// Residual sharing: after the step-t merge, 2^(t+1) workers hold identical
// data and perform identical drops, so each collects a 1/2^(t+1) share.
// (The paper states the ½ rule for one exchange, which is exact for d = 2;
// the generalization keeps the cluster-wide conservation law exact for all
// d — see DESIGN.md §7.)
//
//spardl:hotpath
func (s *SparDL) runRSAG(ep comm.Endpoint, mine *sparse.Chunk) *sparse.Chunk {
	share := float32(0.5)
	for dist := 1; dist < s.d; dist *= 2 {
		peer := s.groupRanks[s.team^dist]
		pk, bytes := s.tx.Pack(mine)
		in, _ := ep.SendRecv(peer, pk, bytes)
		got := s.tx.Unpack(in)
		sparsecoll.ChargeMerge(ep, got.Len()+mine.Len())
		// mine was just sent by reference to the peer and got belongs to
		// the peer's arena, so neither may be merged in place or recycled;
		// only the local merged intermediate is.
		merged := s.ar.MergeAdd(mine, got)
		kept, dropped := s.ar.TopKChunk(merged, s.blockK)
		sparsecoll.ChargeScan(ep, merged.Len())
		addDrops(s.stepRes, dropped, share)
		s.ar.Recycle(merged)
		s.ar.Recycle(dropped)
		mine = kept
		share /= 2
	}
	return mine
}

// runBSAG synchronizes the d teams with the Bruck-based sparse all-gather
// (Section III-D, case "d is not a power of 2"). Selecting during a Bruck
// exchange would compress blocks in different orders on different workers
// and desynchronize the model replicas, so B-SAG instead applies a single
// top-h selection *before* the all-gather — with h steered by Algorithm 2
// so that the merged count N_t lands near L(k,d,P) — and one final top-L
// selection after it, which is identical on all members of the position
// group. Cost: Eq. 8.
//
//spardl:hotpath
func (s *SparDL) runBSAG(ep comm.Endpoint, mine *sparse.Chunk) *sparse.Chunk {
	h := s.hctl.H()
	sel, dropped := s.ar.TopKChunk(mine, h)
	sparsecoll.ChargeScan(ep, mine.Len())
	// This worker is the unique holder of its team's partial sums, so the
	// pre-gather drops are collected in full.
	addDrops(s.stepRes, dropped, 1)
	s.ar.Recycle(dropped)

	own := s.tx.PackItem(sel)
	items := collective.BruckAllGatherAlloc(ep, s.groupRanks, s.team, own, s.tx.ItemBytes, s.ar)
	chunks := s.ar.Chunks(len(items))
	total := 0
	for _, it := range items {
		c := s.tx.Unpack(it)
		chunks = append(chunks, c)
		total += c.Len()
	}
	sparsecoll.ChargeMerge(ep, total)
	merged := s.ar.MergeAddAll(chunks)
	nt := merged.Len()
	s.nts = append(s.nts, nt)

	kept, dropped2 := s.ar.TopKChunk(merged, s.blockK)
	sparsecoll.ChargeScan(ep, nt)
	// All d members of the position group hold the identical merged set and
	// drop identically; each collects a 1/d share (Section III-D).
	addDrops(s.stepRes, dropped2, 1/float32(s.d))
	s.ar.Recycle(merged)
	s.ar.Recycle(dropped2)

	s.hctl.Observe(nt)
	return kept
}
