package core

import (
	"math/rand"
	"testing"
)

func TestHControllerInit(t *testing.T) {
	const p, d, k = 14, 7, 1400
	c := NewHController(p, d, k)
	if got, want := c.H(), k/p; got != want {
		t.Fatalf("initial h = %d, want k/P = %d", got, want)
	}
	if got, want := c.Target(), float64(d*k)/float64(p); got != want {
		t.Fatalf("target = %g, want dk/P = %g", got, want)
	}
}

func TestHControllerMovesTowardTarget(t *testing.T) {
	// Simulated environment: the merged count N_t is a deterministic,
	// increasing function of h (overlap factor below d), so the controller
	// must drive N_t near the target L = dk/P.
	const p, d, k = 14, 7, 1400
	c := NewHController(p, d, k)
	l := c.Target()
	overlap := 0.6 // each extra h contributes 0.6·d distinct indices
	nt := func(h int) int { return int(float64(h) * float64(d) * overlap) }
	var last int
	for i := 0; i < 200; i++ {
		last = nt(c.H())
		c.Observe(last)
	}
	if ratio := float64(last) / l; ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("after 200 steps N_t=%d vs target %g (ratio %.2f)", last, l, ratio)
	}
}

func TestHControllerClampsToPaperRange(t *testing.T) {
	const p, d, k = 14, 7, 1400
	c := NewHController(p, d, k)
	// Pathological feedback: always "too few" — h must saturate at dk/P.
	for i := 0; i < 300; i++ {
		c.Observe(0)
	}
	if got, want := c.H(), d*k/p; got != want {
		t.Fatalf("h saturated at %d, want upper bound dk/P = %d", got, want)
	}
	// Always "too many" — h must saturate at k/P.
	for i := 0; i < 300; i++ {
		c.Observe(1 << 20)
	}
	if got, want := c.H(), k/p; got != want {
		t.Fatalf("h saturated at %d, want lower bound k/P = %d", got, want)
	}
}

func TestHControllerStepDynamics(t *testing.T) {
	// Two consecutive correct-direction observations double the step
	// (CWnd-style growth); a wrong-direction observation reverses and
	// halves it.
	c := NewHController(14, 7, 1400)
	step0 := c.step
	if step0 <= 0 {
		t.Fatal("initial step must be positive")
	}
	// N_t below target with positive step = correct direction: first
	// observation arms the flag, second doubles.
	c.Observe(0)
	if c.step != step0 {
		t.Fatalf("step changed on first confirmation: %g", c.step)
	}
	c.Observe(0)
	if c.step != 2*step0 {
		t.Fatalf("step = %g, want doubled %g", c.step, 2*step0)
	}
	// Overshoot: N_t above target while step positive → reverse and halve.
	c.Observe(1 << 20)
	if c.step != -step0 {
		t.Fatalf("step = %g, want reversed half %g", c.step, -step0)
	}
}

func TestHControllerNoisyEnvironment(t *testing.T) {
	// With multiplicative noise on N_t the controller must stay bounded
	// and keep H within the paper's range.
	const p, d, k = 12, 6, 1200
	c := NewHController(p, d, k)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		noise := 0.7 + 0.6*rng.Float64()
		nt := int(float64(c.H()) * float64(d) * 0.5 * noise)
		c.Observe(nt)
		if h := c.H(); h < k/p || h > d*k/p {
			t.Fatalf("step %d: h=%d escaped [%d, %d]", i, h, k/p, d*k/p)
		}
	}
}
