package core

import (
	"fmt"

	"spardl/internal/sparsecoll"
)

// RestoreResidual implements sparsecoll.ResidualRestorer: an elastic
// recovery rebuilds the reducer for the shrunk cluster (new
// sparse.Partition, re-fitted teams) and reloads the residual snapshot the
// survivor carried across the re-rendezvous. The residual is per-worker
// state independent of P, so the copy is exact.
func (s *SparDL) RestoreResidual(res []float32) {
	if len(res) != len(s.residual) {
		panic(fmt.Sprintf("core: restoring a %d-value residual into a %d-value reducer", len(res), len(s.residual)))
	}
	copy(s.residual, res)
}

// FitTeams returns the options re-fitted for a p-worker cluster after an
// elastic membership change: the team count drops to the largest d ≤
// min(Teams, p) that divides p — and stays a power of two under a forced
// R-SAG — with everything else carried over. d = 1 is always reachable, so
// the result always passes Validate(p) for p ≥ 1.
func (o Options) FitTeams(p int) Options {
	o = o.withDefaults()
	d := o.Teams
	if d > p {
		d = p
	}
	for d > 1 && (p%d != 0 || (o.Variant == RSAG && d&(d-1) != 0)) {
		d--
	}
	o.Teams = d
	return o
}

// NewElasticFactory is NewFactory for elastic runs: every construction
// re-fits the team count to the worker count it is invoked with, so one
// factory value survives a mid-training shrink and rebuilds valid team
// partitions for the survivors. The fitted options are Validate-checked
// before use; a failure panics, which the elastic trainer surfaces as a
// fail-fast configuration error rather than a retryable fault.
func NewElasticFactory(opts Options) sparsecoll.Factory {
	return func(p, rank, n, k int) sparsecoll.Reducer {
		fitted := opts.FitTeams(p)
		if err := fitted.Validate(p); err != nil {
			panic(err)
		}
		r, err := New(p, rank, n, k, fitted)
		if err != nil {
			panic(err)
		}
		return r
	}
}
