package core

// HController implements the compression-ratio adjustment algorithm for
// B-SAG (Algorithm 2), which is modelled on TCP's congestion-window
// dynamics: the top-h selection size is adjusted by a signed step; while
// consecutive adjustments keep moving in the correct direction the step
// doubles (after one confirmation), and whenever the direction overshoots
// the step reverses and halves.
//
// h is kept inside [k/P, dk/P] (Section III-D): the bounds correspond to
// entirely non-overlapping and entirely overlapping selections across
// teams, respectively.
type HController struct {
	h    float64
	step float64
	flag bool
	lo   float64 // k/P
	hi   float64 // dk/P
	l    float64 // L(k,d,p) = dk/P, the target gradient count
}

// NewHController builds the controller for a cluster of p workers with d
// teams and a global selection size k. Initial h = k/P and initial step =
// +0.01·k(d-1)/P, as in Algorithm 2.
func NewHController(p, d, k int) *HController {
	lo := float64(k) / float64(p)
	hi := float64(d) * float64(k) / float64(p)
	step := 0.01 * float64(k) * float64(d-1) / float64(p)
	if step <= 0 {
		step = 1 // degenerate d=1; keep the controller well-formed
	}
	return &HController{h: lo, step: step, lo: lo, hi: hi, l: hi}
}

// H returns the current selection size (at least 1).
func (c *HController) H() int {
	h := int(c.h + 0.5)
	if h < 1 {
		h = 1
	}
	return h
}

// Target returns L(k,d,p), the desired gradient count after B-SAG.
func (c *HController) Target() float64 { return c.l }

// Observe feeds the measured gradient count after the inter-team Bruck
// all-gather (N_t) and updates h per Algorithm 2. The direction is correct
// when the count exceeds the target and the step is negative (shrinking h),
// or vice versa — the XOR condition of line 3.
func (c *HController) Observe(nt int) {
	correct := (float64(nt) > c.l) != (c.step > 0)
	if correct {
		if c.flag {
			c.step *= 2
			c.flag = false
		} else {
			c.flag = true
		}
	} else {
		c.step = -c.step / 2
		c.flag = false
	}
	c.h += c.step
	if c.h < c.lo {
		c.h = c.lo
	}
	if c.h > c.hi {
		c.h = c.hi
	}
}
