package core

import (
	"testing"
)

func TestFitTeamsShrinksToValidDivisor(t *testing.T) {
	cases := []struct {
		opts  Options
		p     int
		wantD int
	}{
		{Options{Teams: 4}, 6, 3},                // 4∤6 → largest divisor ≤ 4
		{Options{Teams: 4, Variant: RSAG}, 6, 2}, // 3 divides 6 but R-SAG needs pow2
		{Options{Teams: 8}, 3, 3},                // shrink below old d entirely
		{Options{Teams: 8, Variant: RSAG}, 6, 2}, // pow2 ∧ divisor
		{Options{}, 5, 1},                        // default d=1 carries over
		{Options{Teams: 3, Variant: BSAG}, 7, 1}, // prime P → only d=1 fits
		{Options{Teams: 4, Variant: RSAG}, 4, 4}, // unchanged when still valid
	}
	for _, c := range cases {
		fitted := c.opts.FitTeams(c.p)
		if fitted.Teams != c.wantD {
			t.Errorf("FitTeams(%+v, p=%d) = d=%d, want %d", c.opts, c.p, fitted.Teams, c.wantD)
		}
		if err := fitted.Validate(c.p); err != nil {
			t.Errorf("fitted options invalid for p=%d: %v", c.p, err)
		}
	}
}

func TestRestoreResidualRoundTrip(t *testing.T) {
	r, err := New(4, 0, 16, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := make([]float32, 16)
	for i := range snap {
		snap[i] = float32(i) * 0.5
	}
	r.RestoreResidual(snap)
	got := r.Residual()
	for i := range snap {
		if got[i] != snap[i] {
			t.Fatalf("residual[%d] = %v, want %v", i, got[i], snap[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length-mismatched restore must panic")
		}
	}()
	r.RestoreResidual(make([]float32, 3))
}

func TestNewElasticFactoryRefitsAcrossShrink(t *testing.T) {
	f := NewElasticFactory(Options{Teams: 4})
	// 8 workers: d=4 fits unchanged. 6 workers: re-fits to d=3.
	if r := f(8, 0, 32, 4); r == nil {
		t.Fatal("factory refused p=8")
	}
	if r := f(6, 0, 32, 4); r == nil {
		t.Fatal("factory refused p=6 after shrink")
	}
	if r := f(5, 0, 32, 4); r == nil {
		t.Fatal("factory refused prime p=5")
	}
}
