package core

import (
	"fmt"
	"testing"

	"spardl/internal/simnet"
	"spardl/internal/sparsecoll"
)

// TestNoReachablePanicSweep pins the fail-fast contract: for every
// P ∈ {2..9}, every divisor d of P, every SAG variant and every baseline
// method, construction either succeeds and a full Reduce completes, or the
// validated constructor returns an error — a mid-collective panic (the old
// gTopk/recursive-doubling failure mode) is never reachable from a legal
// configuration request.
func TestNoReachablePanicSweep(t *testing.T) {
	const n, k = 240, 12

	runAll := func(t *testing.T, p int, factory sparsecoll.Factory) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("mid-collective panic: %v", r)
			}
		}()
		simnet.Run(p, unit, func(rank int, ep *simnet.Endpoint) {
			r := factory(p, rank, n, k)
			g := make([]float32, n)
			for i := range g {
				g[i] = float32((i*5+rank)%17) - 8
			}
			r.Reduce(ep, g)
		})
	}

	for p := 2; p <= 9; p++ {
		// SparDL: every divisor of P × every variant must construct or error
		// at New, and constructed reducers must complete a Reduce.
		for d := 1; d <= p; d++ {
			if p%d != 0 {
				// Non-divisors are configuration errors, never panics.
				if err := (Options{Teams: d}).Validate(p); err == nil {
					t.Fatalf("P=%d d=%d: non-divisor team count accepted", p, d)
				}
				continue
			}
			for _, v := range []Variant{Auto, RSAG, BSAG} {
				opts := Options{Teams: d, Variant: v}
				t.Run(fmt.Sprintf("spardl/P=%d/d=%d/%s", p, d, v), func(t *testing.T) {
					if _, err := New(p, 0, n, k, opts); err != nil {
						// Must be the validation error, consistently.
						if vErr := opts.Validate(p); vErr == nil {
							t.Fatalf("New errored (%v) but Validate accepts", err)
						}
						return
					}
					runAll(t, p, NewFactory(opts))
				})
			}
		}
		// Bogus variant/residual values must be rejected, not silently
		// rerouted into some collective.
		if err := (Options{Teams: 1, Variant: Variant(99)}).Validate(p); err == nil {
			t.Fatalf("P=%d: bogus Variant accepted", p)
		}
		if err := (Options{Residual: ResidualMode(99)}).Validate(p); err == nil {
			t.Fatalf("P=%d: bogus ResidualMode accepted", p)
		}

		// Baselines: gTopk must error (not panic) from the validated path on
		// non-pow2 P; everything else must run at every P.
		for name, f := range map[string]sparsecoll.Factory{
			"topka":   sparsecoll.NewTopkA,
			"topkdsa": sparsecoll.NewTopkDSA,
			"oktopk":  sparsecoll.NewOkTopk,
			"dense":   sparsecoll.NewDense,
		} {
			t.Run(fmt.Sprintf("%s/P=%d", name, p), func(t *testing.T) {
				runAll(t, p, f)
			})
		}
		t.Run(fmt.Sprintf("gtopk/P=%d", p), func(t *testing.T) {
			r, err := sparsecoll.NewGTopkErr(p, 0, n, k)
			if sparsecoll.GTopkValid(p) == nil {
				if err != nil || r == nil {
					t.Fatalf("pow2 P=%d: unexpected construction error: %v", p, err)
				}
				runAll(t, p, sparsecoll.NewGTopk)
			} else if err == nil {
				t.Fatalf("non-pow2 P=%d: expected a construction error", p)
			}
		})
	}
}
