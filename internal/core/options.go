// Package core implements SparDL, the paper's primary contribution: the
// Spar-Reduce-Scatter algorithm (Section III-B), the global residual
// collection algorithm (Section III-C), and the two Spar-All-Gather
// variants R-SAG and B-SAG with the compression-ratio adjustment controller
// (Section III-D). It satisfies the same Reducer contract as the baselines
// in package sparsecoll.
package core

import (
	"fmt"

	"spardl/internal/sparse"
	"spardl/internal/sparsecoll"
	"spardl/internal/wire"
)

// ResidualMode selects which discarded gradients feed back into the next
// iteration (Section III-C / Fig. 17).
type ResidualMode int

const (
	// GRES is the paper's global residual collection: local, end-procedure
	// and in-procedure residuals are all collected (Algorithm 1).
	GRES ResidualMode = iota
	// PRES is the partial collection used by gTopk and Ok-Topk: local and
	// end-procedure residuals only; in-procedure discards are lost.
	PRES
	// LRES is the local-only collection of DGC: a value is kept as residual
	// only if this worker never selected it for transmission.
	LRES
)

// String implements fmt.Stringer.
func (m ResidualMode) String() string {
	switch m {
	case GRES:
		return "GRES"
	case PRES:
		return "PRES"
	case LRES:
		return "LRES"
	}
	return fmt.Sprintf("ResidualMode(%d)", int(m))
}

// Variant selects the Spar-All-Gather algorithm used to synchronize teams.
type Variant int

const (
	// Auto follows the paper's rule: R-SAG when the team count is a power
	// of two, B-SAG otherwise (Section III-D).
	Auto Variant = iota
	// RSAG forces recursive-doubling Spar-All-Gather (requires d = 2^i).
	RSAG
	// BSAG forces Bruck-based Spar-All-Gather (any d).
	BSAG
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Auto:
		return "Auto"
	case RSAG:
		return "R-SAG"
	case BSAG:
		return "B-SAG"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// WireMode selects the transport representation — and therefore the α-β
// byte accounting — of every sparse message a reducer sends.
type WireMode = wire.Mode

const (
	// WireCOO charges the paper's COO accounting: 8 bytes per entry, no
	// header. The default; reproduces Table I bit-for-bit.
	WireCOO = wire.ModeCOO
	// WireNegotiated charges the smallest self-describing encoding
	// (COO / delta-varint / bitmap) per message without materializing it.
	WireNegotiated = wire.ModeNegotiated
	// WireEncoded actually encodes at the sender and decodes at the
	// receiver — the byte-accurate realism/debug mode.
	WireEncoded = wire.ModeEncoded
)

// Options configures a SparDL reducer.
type Options struct {
	// Teams is the number of teams d (Section III-D). d must divide P.
	// d = 1 (the default, what the paper calls plain "SparDL") uses only
	// Spar-Reduce-Scatter plus a final Bruck all-gather.
	Teams int
	// Variant selects the team-synchronization algorithm when Teams > 1.
	Variant Variant
	// Residual selects the residual collection algorithm (default GRES).
	Residual ResidualMode
	// Eager disables the paper's "Optimization for SRS": blocks are
	// sparsified immediately after every summation instead of lazily right
	// before transmission. Used by the ablation benches.
	Eager bool
	// Wire selects the transport representation of sparse messages
	// (default WireCOO, the paper's 8-bytes-per-entry accounting).
	Wire WireMode
	// Dense selects when merge results switch into the dense-block
	// representation mid-collective (default sparse.DenseAdaptive). The
	// switch is a pure function of the merged entry sets, so every backend
	// makes the same decision; sparse.DenseNever reproduces the pre-dense
	// behaviour exactly.
	Dense sparse.DensePolicy
}

// withDefaults normalizes zero values.
func (o Options) withDefaults() Options {
	if o.Teams == 0 {
		o.Teams = 1
	}
	return o
}

// variantFor resolves the effective SAG variant for d teams.
func (o Options) variantFor(d int) Variant {
	if o.Variant != Auto {
		return o.Variant
	}
	if d&(d-1) == 0 {
		return RSAG
	}
	return BSAG
}

// Validate reports configuration errors for a P-worker cluster. Every
// reachable mid-collective panic is a validation error here instead: a
// SparDL built from Options that Validate accepts never aborts a Reduce
// (the P∈{2..9} × d sweep in the tests pins this).
func (o Options) Validate(p int) error {
	o = o.withDefaults()
	switch o.Variant {
	case Auto, RSAG, BSAG:
	default:
		return fmt.Errorf("core: unknown SAG variant %s", o.Variant)
	}
	switch o.Residual {
	case GRES, PRES, LRES:
	default:
		return fmt.Errorf("core: unknown residual mode %s", o.Residual)
	}
	switch o.Wire {
	case WireCOO, WireNegotiated, WireEncoded:
	default:
		return fmt.Errorf("core: unknown wire mode %s", o.Wire)
	}
	switch o.Dense {
	case sparse.DenseAdaptive, sparse.DenseNever, sparse.DenseAlways:
	default:
		return fmt.Errorf("core: unknown dense policy %s", o.Dense)
	}
	d := o.Teams
	if d < 1 || d > p {
		return fmt.Errorf("core: team count d=%d outside [1, P=%d]", d, p)
	}
	if p%d != 0 {
		return fmt.Errorf("core: team count d=%d must divide P=%d", d, p)
	}
	if d > 1 && o.variantFor(d) == RSAG && d&(d-1) != 0 {
		// The recursive-doubling exchange indexes the position group by
		// team XOR 2^t, which walks out of range for non-pow2 d — exactly
		// the class of reduce-time panic this validation front-loads.
		return fmt.Errorf("core: R-SAG requires a power-of-two team count, got d=%d", d)
	}
	return nil
}

// NewFactory adapts New to the sparsecoll.Factory signature so the trainer
// and experiment harness can treat SparDL and the baselines uniformly. It
// panics on invalid options (a configuration bug surfaced at startup).
func NewFactory(opts Options) sparsecoll.Factory {
	return func(p, rank, n, k int) sparsecoll.Reducer {
		r, err := New(p, rank, n, k, opts)
		if err != nil {
			panic(err)
		}
		return r
	}
}
