package core

import (
	"math/rand"
	"testing"

	"spardl/internal/simnet"
	"spardl/internal/sparsecoll"
)

// TestSparDLOverSegmentWithTeams: the full SparDL machinery — SRS, team
// synchronization, GRES — must run unchanged over a bucket sub-range via
// sparsecoll.NewSegment, with per-bucket residual state: two disjoint
// buckets must reproduce exactly the two standalone SparDL runs on their
// sub-vectors, across iterations.
func TestSparDLOverSegmentWithTeams(t *testing.T) {
	const (
		p          = 8
		n          = 4096
		cut        = 1536 // bucket boundary
		k          = 64
		iterations = 3
	)
	opts := Options{Teams: 2, Wire: WireNegotiated}
	factory := NewFactory(opts)

	grad := func(n, rank, it int) []float32 {
		rng := rand.New(rand.NewSource(int64(97*rank + it)))
		g := make([]float32, n)
		for i := range g {
			v := rng.NormFloat64()
			g[i] = float32(v * v * v) // heavy tails, like real gradients
		}
		return g
	}

	// Bucketed run: two SegmentReducers per worker over one flat vector.
	bucketed := make([][]float32, iterations)
	simnet.Run(p, simnet.Ethernet, func(rank int, ep *simnet.Endpoint) {
		k0 := k * cut / n
		buckets := []*sparsecoll.SegmentReducer{
			sparsecoll.NewSegment(factory, p, rank, 0, cut, k0),
			sparsecoll.NewSegment(factory, p, rank, cut, n, k-k0),
		}
		out := make([]float32, n)
		for it := 0; it < iterations; it++ {
			flat := grad(n, rank, it)
			for _, b := range buckets {
				b.ReduceInto(ep, flat, out)
			}
			if rank == 0 {
				bucketed[it] = append([]float32(nil), out...)
			}
			ep.SyncClock()
		}
	})

	// Standalone runs on each sub-vector must agree bit-for-bit.
	for _, seg := range []struct{ lo, hi, k int }{{0, cut, k * cut / n}, {cut, n, k - k*cut/n}} {
		alone := make([][]float32, iterations)
		simnet.Run(p, simnet.Ethernet, func(rank int, ep *simnet.Endpoint) {
			r, err := New(p, rank, seg.hi-seg.lo, seg.k, opts)
			if err != nil {
				panic(err)
			}
			for it := 0; it < iterations; it++ {
				flat := grad(n, rank, it)
				got := r.Reduce(ep, flat[seg.lo:seg.hi])
				if rank == 0 {
					alone[it] = got
				}
				ep.SyncClock()
			}
		})
		for it := 0; it < iterations; it++ {
			for i := range alone[it] {
				if bucketed[it][seg.lo+i] != alone[it][i] {
					t.Fatalf("bucket [%d,%d) iter %d differs at %d: %g vs %g",
						seg.lo, seg.hi, it, i, bucketed[it][seg.lo+i], alone[it][i])
				}
			}
		}
	}
}

// TestSparDLSegmentTinyBucket: buckets far smaller than the worker count
// (empty partition blocks, clamped budgets) must still synchronize replicas
// identically.
func TestSparDLSegmentTinyBucket(t *testing.T) {
	const p, n = 8, 5 // n < P: some SRS blocks are empty
	outs := make([][]float32, p)
	simnet.Run(p, simnet.Ethernet, func(rank int, ep *simnet.Endpoint) {
		r := sparsecoll.NewSegment(NewFactory(Options{}), p, rank, 0, n, 2)
		g := make([]float32, n)
		for i := range g {
			g[i] = float32(rank*10 + i + 1)
		}
		outs[rank] = r.Reduce(ep, g)
	})
	for w := 1; w < p; w++ {
		for i := range outs[0] {
			if outs[w][i] != outs[0][i] {
				t.Fatalf("worker %d disagrees at %d: %g vs %g", w, i, outs[w][i], outs[0][i])
			}
		}
	}
}
