package core

import (
	"math"
	"testing"

	"spardl/internal/simnet"
)

// TestGRESExactSemantics pins the residual bookkeeping on a hand-checkable
// two-worker scenario: n=4, one block per worker, k=2 (one entry per
// block). With two workers and two blocks, worker w preserves block w and
// sends the other block in one SRS step.
func TestGRESExactSemantics(t *testing.T) {
	const p, n, k = 2, 4, 2
	// Gradients chosen so selections are unambiguous:
	// blocks: [0,2) owned by worker 0, [2,4) owned by worker 1.
	grads := [][]float32{
		{4, 1, -3, 0.5}, // worker 0
		{2, 0.25, 1, 5}, // worker 1
	}
	outs := make([][]float32, p)
	reducers := make([]*SparDL, p)
	simnet.Run(p, unit, func(rank int, ep *simnet.Endpoint) {
		r, err := New(p, rank, n, k, Options{})
		if err != nil {
			panic(err)
		}
		reducers[rank] = r
		g := append([]float32(nil), grads[rank]...)
		outs[rank] = r.Reduce(ep, g)
	})

	// blockK = k/P = 1 entry per block.
	// Worker 0 sends top-1 of block 1: max(|-3|, |0.5|) → index 2 (-3);
	//   0.5 at index 3 becomes ξ (discarded pre-send).
	// Worker 1 sends top-1 of block 0: index 0 (2); 0.25 at index 1 → ξ.
	// Worker 0 merges received {0:2} into its block 0 {4,1} → {6,1},
	//   reserved selection keeps index 0 (6); index 1 (1) → ξ.
	// Worker 1 merges {2:-3} into block 1 {1,5} → {-2,5}, keeps index 3
	//   (5.5... exactly 5+0.5? no: worker 1's own block 1 is {1, 5};
	//   received -3 at index 2 → {-2, 5}; top-1 keeps index 3 (5);
	//   index 2 (-2) → ξ at worker 1.
	// Final global gradient: {6, 0, 0, 5}.
	want := []float32{6, 0, 0, 5}
	for w := 0; w < p; w++ {
		for i := range want {
			if outs[w][i] != want[i] {
				t.Fatalf("worker %d out[%d] = %g, want %g (out=%v)", w, i, outs[w][i], want[i], outs[w])
			}
		}
	}

	// GRES residuals (final index set = {0, 3}):
	// worker 0: index 0 ∈ final → ξ₀[0] = 0 (its 4 survived into the sum);
	//   index 1 ∉ final → snapshot 1 (discarded at the reserved selection,
	//   kept at the origin);
	//   index 2 ∉ final → snapshot -3: worker 0's contribution was sent but
	//   worker 1 discarded the merged sum — an end-procedure residual that
	//   stays with the originating worker;
	//   index 3 ∉ final → snapshot 0.5 (local pre-send discard).
	wantRes0 := []float32{0, 1, -3, 0.5}
	// worker 1: index 0 ∈ final → ξ₁[0] = 0 (its 2 was sent and survived);
	//   index 1: not final → snapshot 0.25; index 2: not final → snapshot
	//   1 (its own block-1 value at index 2, which it discarded after the
	//   merge — but snapshot holds the original 1; the merged -2 discard
	//   went to ξ₁[2], ignored since 2 ∉ final);
	//   index 3 ∈ final → ξ₁[3] = 0.
	wantRes1 := []float32{0, 0.25, 1, 0}
	for i := range wantRes0 {
		if got := reducers[0].Residual()[i]; got != wantRes0[i] {
			t.Fatalf("worker 0 residual[%d] = %g, want %g (%v)", i, got, wantRes0[i], reducers[0].Residual())
		}
		if got := reducers[1].Residual()[i]; got != wantRes1[i] {
			t.Fatalf("worker 1 residual[%d] = %g, want %g (%v)", i, got, wantRes1[i], reducers[1].Residual())
		}
	}

	// Conservation: Σgrads = Σout + Σresiduals exactly.
	var injected, synced, leftover float64
	for w := 0; w < p; w++ {
		for _, v := range grads[w] {
			injected += float64(v)
		}
		for _, v := range reducers[w].Residual() {
			leftover += float64(v)
		}
	}
	for _, v := range outs[0] {
		synced += float64(v)
	}
	if math.Abs(injected-synced-leftover) > 1e-6 {
		t.Fatalf("conservation: %g != %g + %g", injected, synced, leftover)
	}
}

// TestResidualReuseAcrossIterations verifies that residual values actually
// feed back: a value just below the selection cut must be synchronized in a
// later iteration once accumulated.
func TestResidualReuseAcrossIterations(t *testing.T) {
	const p, n, k = 2, 4, 2
	outs := make([][][]float32, 3)
	simnet.Run(p, unit, func(rank int, ep *simnet.Endpoint) {
		r, err := New(p, rank, n, k, Options{})
		if err != nil {
			panic(err)
		}
		for it := 0; it < 3; it++ {
			// Index 1 always carries 0.6 — below index 0's 1.0 — so it is
			// never selected fresh, but accumulates 0.6/iteration in the
			// residual until it beats 1.0 (at the second iteration:
			// 1.2 > 1.0).
			g := []float32{1, 0.6, 1, 0.6}
			out := r.Reduce(ep, g)
			if rank == 0 {
				outs[it] = append(outs[it], out)
			}
		}
	})
	if outs[0][0][1] != 0 {
		t.Fatalf("iter 0 should not sync index 1: %v", outs[0][0])
	}
	if outs[1][0][1] == 0 {
		t.Fatalf("iter 1 should sync accumulated index 1: %v", outs[1][0])
	}
}

func TestSparDLSingleWorker(t *testing.T) {
	simnet.Run(1, unit, func(rank int, ep *simnet.Endpoint) {
		r, err := New(1, 0, 100, 10, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		g := make([]float32, 100)
		for i := range g {
			g[i] = float32(i)
		}
		out := r.Reduce(ep, g)
		nz := 0
		for _, v := range out {
			if v != 0 {
				nz++
			}
		}
		if nz != 10 {
			t.Errorf("P=1 kept %d entries, want 10", nz)
		}
	})
}

func TestReducePanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := simnet.New(1, unit)
	r, err := New(1, 0, 100, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.Reduce(f.Endpoint(0), make([]float32, 99))
}

func TestSparDLIndivisibleSizes(t *testing.T) {
	// n not divisible by m, k not divisible by m — exercises the balanced
	// partition and the blockK floor.
	for _, tc := range []struct{ p, n, k, d int }{
		{6, 997, 53, 1},
		{6, 997, 53, 3},
		{14, 1013, 29, 7},
		{10, 501, 11, 5},
	} {
		outs, reds, _ := runSparDL(t, tc.p, tc.n, tc.k, 2, int64(tc.p), Options{Teams: tc.d})
		assertConsistent(t, outs)
		gap := conservationGap(tc.p, tc.n, 2, int64(tc.p), outs, reds)
		if math.Abs(gap) > 0.05 {
			t.Fatalf("P=%d n=%d k=%d d=%d: conservation gap %g", tc.p, tc.n, tc.k, tc.d, gap)
		}
	}
}

// TestGRESBeatsLRESOnStarvedCoordinates: with GRES, coordinates that are
// repeatedly discarded mid-procedure eventually synchronize; LRES loses
// them when they were locally selected but dropped downstream.
func TestResidualModesDivergeInValue(t *testing.T) {
	const p, n, k, iters, seed = 6, 600, 12, 6, 5
	sums := map[ResidualMode]float64{}
	for _, mode := range []ResidualMode{GRES, LRES} {
		outs, _, _ := runSparDL(t, p, n, k, iters, seed, Options{Residual: mode})
		var total float64
		for it := range outs {
			for _, v := range outs[it][0] {
				total += math.Abs(float64(v))
			}
		}
		sums[mode] = total
	}
	// GRES re-injects everything, so over the run it must synchronize at
	// least as much gradient magnitude as LRES.
	if sums[GRES] <= sums[LRES] {
		t.Fatalf("GRES synchronized %.2f, LRES %.2f — expected GRES to carry more mass",
			sums[GRES], sums[LRES])
	}
}
