package core

import (
	"fmt"

	"spardl/internal/collective"
	"spardl/internal/comm"
	"spardl/internal/sparse"
	"spardl/internal/sparsecoll"
	"spardl/internal/wire"
)

// SparDL is the paper's sparse communication framework. One instance per
// worker; Reduce performs one full synchronization:
//
//	Spar-Reduce-Scatter inside each team  (Section III-B)
//	→ Spar-All-Gather across teams        (Section III-D, when d > 1)
//	→ Bruck all-gather inside each team
//
// with the global residual collection algorithm (Section III-C) running
// throughout. With d = 1 (the default configuration the paper calls plain
// "SparDL"), only SRS and the final all-gather run, at a total cost of
// 2⌈log₂P⌉·α + 4k(P-1)/P·β (Eq. 4).
type SparDL struct {
	n, k    int
	p, rank int
	d, m    int // team count, team size (m = P/d)
	team    int // this worker's team, ranks [team·m, (team+1)·m)
	pos     int // this worker's position inside the team
	opts    Options
	variant Variant        // resolved SAG variant (meaningful when d > 1)
	blockK  int            // per-block selection size L(k,d,P) = dk/P = k/m
	tx      wire.Transport // sizes (and in WireEncoded, round-trips) every message

	part       *sparse.Partition // the m gradient blocks
	bags       [][]int           // bags[j-1] = relative block offsets of sending bag j
	teamRanks  []int             // global ranks of my team, by position
	groupRanks []int             // global ranks of my position-group, by team

	residual []float32
	stepRes  []float32 // ξ of Algorithm 1: all values discarded during the procedure
	hctl     *HController
	nts      []int // recorded N_t series (Fig. 7)

	// Steady-state allocation machinery: every chunk, pointer slice and
	// encode buffer built during a Reduce comes from the arena (epoch-reset
	// at the top of each call), and the two dense work vectors are
	// persistent per-reducer scratch — a steady-state ReduceInto performs
	// no heap allocation of its own.
	ar       *sparse.Arena
	acc      []float32 // residual-augmented working gradient
	snapshot []float32 // G_copy of Algorithm 1, line 3
	selBuf   []int32   // LRES: indices this worker selected, reused across calls
}

// New builds the SparDL reducer for one worker of a P-worker cluster
// synchronizing length-n gradients with global selection size k.
//
// The per-block selection size is L(k,d,P) = ⌊k/m⌋ clamped to at least 1
// (every block must contribute something for the schedule to stay
// well-formed), so the cluster-wide selection the reducer actually
// enforces is m·max(1, ⌊k/m⌋) — EffectiveK — not k itself. The drift goes
// both ways: k < m rounds *up* to m (the clamp), and any k not divisible
// by m rounds *down* by up to m−1 (the floor). Callers that need the
// requested and enforced budgets to coincide should pick k as a multiple
// of m = P/d; the regression tests pin this arithmetic.
func New(p, rank, n, k int, opts Options) (*SparDL, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(p); err != nil {
		return nil, err
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("core: rank %d outside [0, %d)", rank, p)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: k=%d outside [1, n=%d]", k, n)
	}
	d := opts.Teams
	m := p / d
	blockK := k / m
	if blockK < 1 {
		blockK = 1
	}
	s := &SparDL{
		n: n, k: k, p: p, rank: rank,
		d: d, m: m, team: rank / m, pos: rank % m,
		opts: opts, variant: opts.variantFor(d), blockK: blockK,
		part:     sparse.NewPartition(n, m),
		bags:     sendBags(m),
		residual: make([]float32, n),
		stepRes:  make([]float32, n),
		ar:       sparse.NewArena(),
		acc:      make([]float32, n),
		snapshot: make([]float32, n),
	}
	s.ar.SetDensePolicy(opts.Dense)
	s.tx = wire.Transport{Mode: opts.Wire, Arena: s.ar}
	s.teamRanks = make([]int, m)
	for j := range s.teamRanks {
		s.teamRanks[j] = s.team*m + j
	}
	s.groupRanks = make([]int, d)
	for t := range s.groupRanks {
		s.groupRanks[t] = t*m + s.pos
	}
	if d > 1 && s.variant == BSAG {
		s.hctl = NewHController(p, d, k)
	}
	return s, nil
}

// sendBags partitions the m-1 non-preserved blocks into l = ⌈log₂m⌉
// sending bags (Section III-B "Partitioning"): bag j holds the 2^(j-1)
// blocks at relative offsets [2^(j-1), 2^j) from the preservation block,
// except the last bag, which holds the E = m − 2^(l-1) remaining blocks.
func sendBags(m int) [][]int {
	if m <= 1 {
		return nil
	}
	l := 0
	for 1<<l < m {
		l++
	}
	bags := make([][]int, l)
	for j := 1; j <= l; j++ {
		lo := 1 << (j - 1)
		hi := 1 << j
		if hi > m {
			hi = m
		}
		offs := make([]int, 0, hi-lo)
		for r := lo; r < hi; r++ {
			offs = append(offs, r)
		}
		bags[j-1] = offs
	}
	return bags
}

// Name implements sparsecoll.Reducer.
func (s *SparDL) Name() string {
	name := "SparDL"
	if s.d > 1 {
		name = fmt.Sprintf("SparDL(%s,d=%d)", s.variant, s.d)
	}
	if s.opts.Residual != GRES {
		name += "-" + s.opts.Residual.String()
	}
	if s.opts.Eager {
		name += "-eager"
	}
	if s.opts.Wire != WireCOO {
		name += "+" + s.opts.Wire.String()
	}
	if s.opts.Dense != sparse.DenseAdaptive {
		name += "+dense-" + s.opts.Dense.String()
	}
	return name
}

// Residual implements sparsecoll.ResidualCarrier; the returned slice is
// live internal state and must be treated as read-only.
func (s *SparDL) Residual() []float32 { return s.residual }

// BsagCounts returns the recorded N_t series — the number of gradients
// observed after each inter-team Bruck all-gather — used to reproduce
// Fig. 7 and to drive Algorithm 2.
func (s *SparDL) BsagCounts() []int { return s.nts }

// BlockK returns the per-block selection size L(k,d,P) = dk/P.
func (s *SparDL) BlockK() int { return s.blockK }

// EffectiveK returns the cluster-wide selection size the reducer actually
// enforces: m·max(1, ⌊k/m⌋), the per-block size times the block count.
// It exceeds the requested k whenever k < m (the clamp raises every block
// to one entry) and falls short by up to m−1 when m does not divide k;
// see New. The final global gradient never holds more than EffectiveK
// entries.
func (s *SparDL) EffectiveK() int { return s.blockK * s.m }

// Reduce implements sparsecoll.Reducer. It allocates a fresh result vector
// the caller owns; steady-state loops should pass a reusable vector to
// ReduceInto instead.
func (s *SparDL) Reduce(ep comm.Endpoint, grad []float32) []float32 {
	out := make([]float32, s.n)
	s.ReduceInto(ep, grad, out)
	return out
}

// ReduceInto implements sparsecoll.InPlaceReducer: one full SparDL
// synchronization whose result overwrites out (len n). At steady state the
// call is allocation-free: chunks come from the reducer's arena (epoch-
// reset here), dense scratch is persistent per-reducer state.
//
//spardl:hotpath
func (s *SparDL) ReduceInto(ep comm.Endpoint, grad, out []float32) {
	if len(grad) != s.n || len(out) != s.n {
		panic(fmt.Sprintf("core: gradient/output length %d/%d, expected %d", len(grad), len(out), s.n))
	}
	// New arena epoch: everything handed out two Reduce calls ago is
	// reclaimed (one epoch of quarantine covers in-flight peer reads on
	// reference-passing backends; see sparse.Arena).
	s.ar.Reset()
	// Plus the stored residuals onto the fresh gradients and snapshot the
	// result (the G_copy of Algorithm 1, line 3). Both vectors are
	// persistent scratch — nothing built inside Reduce aliases them. The
	// residual add, snapshot copy and ξ clear fuse into a single pass: at
	// paper-like n these four length-n vectors dominate the prologue, and
	// one traversal keeps each cache line hot for all of them.
	acc := s.acc
	snapshot := s.snapshot
	stepRes := s.stepRes
	residual := s.residual
	for i, g := range grad {
		v := g + residual[i]
		acc[i] = v
		snapshot[i] = v
		stepRes[i] = 0
	}
	sparsecoll.ChargeScan(ep, s.n)

	localSel := s.selBuf[:0] // indices this worker selected for transmission (LRES)

	// Phase 1: Spar-Reduce-Scatter inside the team.
	var reserved *sparse.Chunk
	if s.m == 1 {
		// Single-member teams (d = P): the "reserved block" is the whole
		// vector; only the local top-k applies before team synchronization.
		reserved = s.sparsifyDenseBlock(ep, acc, 0, s.n, &localSel)
	} else if s.opts.Eager {
		reserved = s.runSRSEager(ep, acc, &localSel)
	} else {
		reserved = s.runSRS(ep, acc, &localSel)
	}

	// Phase 2: Spar-All-Gather across teams.
	if s.d > 1 {
		if s.variant == RSAG {
			reserved = s.runRSAG(ep, reserved)
		} else {
			reserved = s.runBSAG(ep, reserved)
		}
	}

	// Phase 3: Bruck all-gather of the reduced blocks inside the team.
	// finalChunks is always born with exact arena capacity so the appends
	// below never grow it.
	finalChunks := s.ar.Chunks(1)
	if s.m == 1 {
		finalChunks = append(finalChunks, reserved)
	} else {
		own := s.tx.PackItem(reserved)
		items := collective.BruckAllGatherAlloc(ep, s.teamRanks, s.pos, own, s.tx.ItemBytes, s.ar)
		finalChunks = s.ar.Chunks(len(items))
		total := 0
		for _, it := range items {
			c := s.tx.Unpack(it)
			finalChunks = append(finalChunks, c)
			total += c.Len()
		}
		sparsecoll.ChargeMerge(ep, total)
	}

	for i := range out {
		out[i] = 0
	}
	for _, c := range finalChunks {
		c.AddToDense(out)
	}

	s.finishResidual(ep, snapshot, finalChunks, localSel)
	s.selBuf = localSel[:0]
}

// runSRS is the transmission-with-sparsification process of Section III-B
// with the paper's lazy-sparsification optimization: a block stays dense in
// acc, absorbing received contributions, until the step that transmits it.
// At step i the worker sends bag l-i+1 to the team member 2^(l-i) positions
// ahead and receives the mirror bag from 2^(l-i) behind; received chunks
// are summed into acc (Theorem 1 guarantees they fall into still-held
// blocks). After l steps only the preservation block remains, which is
// sparsified last (Algorithm 1, line 9).
//
//spardl:hotpath
func (s *SparDL) runSRS(ep comm.Endpoint, acc []float32, localSel *[]int32) *sparse.Chunk {
	m, pos := s.m, s.pos
	l := len(s.bags)
	for i := 1; i <= l; i++ {
		dist := 1 << (l - i)
		bag := s.bags[l-i] // bag number l-i+1
		payload := s.ar.Chunks(len(bag))
		for _, r := range bag {
			b := (pos + r) % m
			lo, hi := s.part.Bounds(b)
			kept := s.sparsifyDenseBlock(ep, acc, lo, hi, localSel)
			if kept.Len() > 0 {
				payload = append(payload, kept)
			}
		}
		target := s.teamRanks[(pos+dist)%m]
		source := s.teamRanks[(pos-dist+m)%m]
		pk, bytes := s.tx.PackSlice(payload)
		ep.Send(target, pk, bytes)
		in, _ := ep.Recv(source)
		for _, c := range s.tx.UnpackSlice(in) {
			sparsecoll.ChargeMerge(ep, c.Len())
			c.AddToDense(acc)
		}
	}
	lo, hi := s.part.Bounds(pos)
	return s.sparsifyDenseBlock(ep, acc, lo, hi, localSel)
}

// runSRSEager is the unoptimized variant (the ablation baseline for the
// "Optimization for SRS" paragraph): every block is sparsified up front and
// re-sparsified immediately after each summation.
//
//spardl:hotpath
func (s *SparDL) runSRSEager(ep comm.Endpoint, acc []float32, localSel *[]int32) *sparse.Chunk {
	m, pos := s.m, s.pos
	blocks := s.ar.Chunks(m)
	for b := 0; b < m; b++ {
		lo, hi := s.part.Bounds(b)
		blocks = append(blocks, s.sparsifyDenseBlock(ep, acc, lo, hi, localSel))
	}
	l := len(s.bags)
	for i := 1; i <= l; i++ {
		dist := 1 << (l - i)
		bag := s.bags[l-i]
		payload := s.ar.Chunks(len(bag))
		for _, r := range bag {
			b := (pos + r) % m
			if blocks[b].Len() > 0 {
				payload = append(payload, blocks[b])
			}
			blocks[b] = nil // sent away; no longer held
		}
		target := s.teamRanks[(pos+dist)%m]
		source := s.teamRanks[(pos-dist+m)%m]
		pk, bytes := s.tx.PackSlice(payload)
		ep.Send(target, pk, bytes)
		in, _ := ep.Recv(source)
		for _, c := range s.tx.UnpackSlice(in) {
			b := s.part.BlockOf(c.IdxAt(0))
			sparsecoll.ChargeMerge(ep, c.Len()+blocks[b].Len())
			// blocks[b] is local-only (never sent), so the merge may reuse
			// its storage in place; the merged intermediate is recycled as
			// soon as the selection has copied out of it.
			merged := s.ar.MergeAddInto(blocks[b], c)
			kept, dropped := s.ar.TopKChunk(merged, s.blockK)
			sparsecoll.ChargeScan(ep, merged.Len())
			addDrops(s.stepRes, dropped, 1)
			s.ar.Recycle(merged)
			s.ar.Recycle(dropped)
			blocks[b] = kept
		}
	}
	return blocks[pos]
}

// sparsifyDenseBlock selects the top blockK entries of acc[lo:hi); every
// unselected value in the range is accumulated into the step residual ξ.
//
//spardl:hotpath
func (s *SparDL) sparsifyDenseBlock(ep comm.Endpoint, acc []float32, lo, hi int, localSel *[]int32) *sparse.Chunk {
	kept := s.ar.TopKDense(acc, lo, hi, s.blockK)
	sparsecoll.ChargeScan(ep, hi-lo)
	for i := lo; i < hi; i++ {
		s.stepRes[i] += acc[i]
	}
	for j, idx := range kept.Idx {
		s.stepRes[idx] -= kept.Val[j]
	}
	if s.opts.Residual == LRES {
		*localSel = append(*localSel, kept.Idx...)
	}
	return kept
}

// addDrops accumulates a dropped chunk into the step residual with the
// given share. The share is 1 when this worker is the unique holder of the
// dropped partial sums, 1/2^(t+1) at R-SAG level t (2^(t+1) workers hold
// identical data and drop identically), and 1/d after B-SAG's final
// selection (all d members of the position group hold identical data).
//
//spardl:hotpath
func addDrops(stepRes []float32, dropped *sparse.Chunk, share float32) {
	if dropped.IsDense() {
		lo, _ := dropped.DenseRange()
		for i, v := range dropped.Val {
			stepRes[lo+int32(i)] += v * share
		}
		return
	}
	for i, idx := range dropped.Idx {
		stepRes[idx] += dropped.Val[i] * share
	}
}

// finishResidual is lines 11-13 of Algorithm 1 plus the PRES/LRES
// ablations: start from the snapshot (G_copy), then at every index that
// made the final global gradient substitute the collected in-procedure
// residual (GRES), zero (PRES), or — for LRES — zero at exactly the indices
// this worker itself selected for transmission.
//
//spardl:hotpath
func (s *SparDL) finishResidual(ep comm.Endpoint, snapshot []float32, finalChunks []*sparse.Chunk, localSel []int32) {
	copy(s.residual, snapshot)
	switch s.opts.Residual {
	case GRES:
		for _, c := range finalChunks {
			// Densified streams substitute over their whole block: every
			// position of a dense chunk is an entry of the final gradient.
			if c.IsDense() {
				lo, hi := c.DenseRange()
				for idx := lo; idx < hi; idx++ {
					s.residual[idx] = s.stepRes[idx]
				}
				continue
			}
			for _, idx := range c.Idx {
				s.residual[idx] = s.stepRes[idx]
			}
		}
	case PRES:
		for _, c := range finalChunks {
			if c.IsDense() {
				lo, hi := c.DenseRange()
				for idx := lo; idx < hi; idx++ {
					s.residual[idx] = 0
				}
				continue
			}
			for _, idx := range c.Idx {
				s.residual[idx] = 0
			}
		}
	case LRES:
		for _, idx := range localSel {
			s.residual[idx] = 0
		}
	}
	sparsecoll.ChargeScan(ep, s.n)
}
