// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation, plus the ablation studies. Each bench executes the
// corresponding experiment at Quick scale; run the paper-faithful scale
// with `go run ./cmd/spardl-bench -run <id> -full`.
package spardl_test

import (
	"testing"

	"spardl"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := spardl.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables := e.Run(spardl.Quick)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// BenchmarkTable1 verifies the communication-complexity table (Table I).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig7 regenerates the N_t stability series (Fig. 7).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates per-update times in four cases (Fig. 8).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates convergence-vs-time in four cases (Fig. 9).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates ResNet-50/BERT per-update times (Fig. 10).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates ResNet-50/BERT convergence (Fig. 11).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12a regenerates the scalability speedups (Fig. 12a).
func BenchmarkFig12a(b *testing.B) { benchExperiment(b, "fig12a") }

// BenchmarkFig12b regenerates 8-worker convergence incl. gTopk (Fig. 12b).
func BenchmarkFig12b(b *testing.B) { benchExperiment(b, "fig12b") }

// BenchmarkFig13 regenerates R-SAG/B-SAG convergence (Fig. 13).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates the impact-of-d tables (Fig. 14).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates per-epoch stability across epochs (Fig. 15).
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16 regenerates the k/n sweep (Fig. 16).
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17 regenerates the GRES/PRES/LRES comparison (Fig. 17).
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkFig18 regenerates the RDMA-network per-update times (Fig. 18).
func BenchmarkFig18(b *testing.B) { benchExperiment(b, "fig18") }

// BenchmarkAblationLazySparsify measures the paper's "Optimization for
// SRS" (lazy vs eager block sparsification).
func BenchmarkAblationLazySparsify(b *testing.B) { benchExperiment(b, "ablation-lazy") }

// BenchmarkAblationSGAGrowth quantifies the SGA dilemma itself.
func BenchmarkAblationSGAGrowth(b *testing.B) { benchExperiment(b, "ablation-sga") }

// BenchmarkAblationAllGather compares Bruck vs direct-send all-gather.
func BenchmarkAblationAllGather(b *testing.B) { benchExperiment(b, "ablation-allgather") }

// BenchmarkAblationDense compares sparse methods against dense all-reduce.
func BenchmarkAblationDense(b *testing.B) { benchExperiment(b, "ablation-dense") }

// BenchmarkExtHetero measures straggler impact in a heterogeneous cluster
// (the paper's future-work extension, Section VI).
func BenchmarkExtHetero(b *testing.B) { benchExperiment(b, "ext-hetero") }

// BenchmarkExtWire measures negotiated wire encodings for sparse messages.
func BenchmarkExtWire(b *testing.B) { benchExperiment(b, "ext-wire") }

// BenchmarkExtWireE2E regenerates the end-to-end wire-mode comparison.
func BenchmarkExtWireE2E(b *testing.B) { benchExperiment(b, "ext-wire-e2e") }

// benchReduceOnce isolates one steady-state SparDL synchronization at
// paper-like sizes (n=1M, k=10k, P=14) — the core-library hot path — under
// one wire mode, via the canonical spardl.ReduceBench harness (shared with
// spardl-bench -reduce-baseline, so the committed baseline and this
// benchmark measure the identical workload). What it measures is the
// marginal cost of one more Reduce, which the arena allocator keeps
// allocation-free.
func benchReduceOnce(b *testing.B, mode spardl.WireMode) {
	b.Helper()
	const p, n, k = 14, 1 << 20, 1 << 20 / 100
	rb, err := spardl.NewReduceBench(p, n, k, mode)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Iterate()
	}
}

// BenchmarkReduceOnce is the COO-accounting baseline of the hot path.
func BenchmarkReduceOnce(b *testing.B) { benchReduceOnce(b, spardl.WireCOO) }

// BenchmarkReduceOnceNegotiated sizes every message through the codec
// without materializing buffers; the sizing pass must stay cheap.
func BenchmarkReduceOnceNegotiated(b *testing.B) { benchReduceOnce(b, spardl.WireNegotiated) }

// BenchmarkReduceOnceEncoded round-trips every message through
// Encode/Decode — the upper bound on transport overhead.
func BenchmarkReduceOnceEncoded(b *testing.B) { benchReduceOnce(b, spardl.WireEncoded) }
