// Package spardl is a Go implementation of SparDL — "Distributed Deep
// Learning Training with Efficient Sparse Communication" (Zhao et al.,
// ICDE 2024) — together with the sparse all-reduce baselines it is
// evaluated against (TopkA, TopkDSA, gTopk, Ok-Topk), a backend-neutral
// communication layer with three interchangeable transports — a
// deterministic α-β-model cluster simulator (simnet), a real concurrent
// in-process byte-level transport (livenet), and a multi-process TCP
// backend (tcpnet) where every worker is a separate OS process — a small
// autograd engine, and the full experiment harness that regenerates every
// table and figure of the paper's evaluation.
//
// # Quick start
//
//	fabric := spardl.NewFabric(8, spardl.Ethernet)
//	// one reducer per worker goroutine:
//	r, _ := spardl.New(8, rank, n, k, spardl.Options{})
//	global := r.Reduce(fabric.Endpoint(rank), grad)
//
// See examples/ for runnable programs and cmd/spardl-bench for the
// experiment harness.
package spardl

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"spardl/internal/chaos"
	"spardl/internal/comm"
	"spardl/internal/core"
	"spardl/internal/expt"
	"spardl/internal/livenet"
	"spardl/internal/pipeline"
	"spardl/internal/simnet"
	"spardl/internal/sparse"
	"spardl/internal/sparsecoll"
	"spardl/internal/tcpnet"
	"spardl/internal/train"
)

// Reducer synchronizes one worker's dense gradient with all peers and
// returns the global sparse-summed gradient; see sparsecoll.Reducer.
type Reducer = sparsecoll.Reducer

// InPlaceReducer is the steady-state variant of Reducer: ReduceInto writes
// the synchronized gradient into a caller-owned vector instead of
// allocating one per call. Every built-in reducer implements it; together
// with the per-reducer chunk arenas the reduce pipeline allocates nothing
// once warm.
type InPlaceReducer = sparsecoll.InPlaceReducer

// ReduceInto synchronizes grad into out via r's in-place path when it has
// one, copying from Reduce otherwise. Steady-state loops should prefer it
// over Reduce.
func ReduceInto(r Reducer, ep CommEndpoint, grad, out []float32) {
	sparsecoll.ReduceInto(r, ep, grad, out)
}

// Factory builds one Reducer per worker.
type Factory = sparsecoll.Factory

// SparDL is the paper's framework: Spar-Reduce-Scatter, global residual
// collection, and the R-SAG / B-SAG team synchronization algorithms.
type SparDL = core.SparDL

// Options configures SparDL (team count d, SAG variant, residual mode).
type Options = core.Options

// ResidualMode selects the residual collection algorithm.
type ResidualMode = core.ResidualMode

// Residual collection algorithms (Section III-C of the paper).
const (
	GRES = core.GRES // global residual collection (the paper's algorithm)
	PRES = core.PRES // partial (local + end-procedure), as gTopk/Ok-Topk
	LRES = core.LRES // local only, as DGC
)

// Variant selects the Spar-All-Gather algorithm.
type Variant = core.Variant

// Spar-All-Gather variants (Section III-D of the paper).
const (
	Auto = core.Auto // R-SAG when d is a power of two, else B-SAG
	RSAG = core.RSAG
	BSAG = core.BSAG
)

// WireMode selects the transport representation — and therefore the α-β
// byte accounting — of every sparse message (Options.Wire).
type WireMode = core.WireMode

// Wire transport modes.
const (
	// WireCOO is the paper's accounting baseline: 8 bytes per entry.
	WireCOO = core.WireCOO
	// WireNegotiated charges the smallest self-describing encoding
	// (COO / delta-varint / bitmap) per message.
	WireNegotiated = core.WireNegotiated
	// WireEncoded actually encodes/decodes every message (byte-accurate
	// realism mode; sizes equal WireNegotiated).
	WireEncoded = core.WireEncoded
)

// WireVariant wraps a baseline factory so its sparse messages are sized —
// and under WireEncoded, round-tripped through the codec — by the given
// wire mode. SparDL itself is configured via Options.Wire instead.
func WireVariant(f Factory, mode WireMode) Factory { return sparsecoll.WireVariant(f, mode) }

// DensePolicy selects when merge results switch into the dense-block
// representation mid-collective (Options.Dense).
type DensePolicy = sparse.DensePolicy

// Representation-switching policies.
const (
	// DenseAdaptive switches once merged entry counts reach half the union
	// index span — the density where a dense block is no larger on the wire
	// and merges become contiguous adds. The default.
	DenseAdaptive = sparse.DenseAdaptive
	// DenseNever keeps every merge result sparse (pre-switching behaviour).
	DenseNever = sparse.DenseNever
	// DenseAlways densifies every merge result (the ablation bound).
	DenseAlways = sparse.DenseAlways
)

// DenseVariant wraps a baseline factory with a representation-switching
// policy for its merge paths. SparDL itself is configured via
// Options.Dense instead.
func DenseVariant(f Factory, policy DensePolicy) Factory { return sparsecoll.DenseVariant(f, policy) }

// New builds a SparDL reducer for one worker of a P-worker cluster
// synchronizing length-n gradients with global selection size k.
func New(p, rank, n, k int, opts Options) (*SparDL, error) {
	return core.New(p, rank, n, k, opts)
}

// NewFactory returns a Factory producing SparDL reducers with the given
// options; it panics on invalid options.
func NewFactory(opts Options) Factory { return core.NewFactory(opts) }

// Baseline reducer factories (the methods of the paper's Table I).
var (
	TopkA   Factory = sparsecoll.NewTopkA
	TopkDSA Factory = sparsecoll.NewTopkDSA
	GTopk   Factory = sparsecoll.NewGTopk
	OkTopk  Factory = sparsecoll.NewOkTopk
	Dense   Factory = sparsecoll.NewDense
)

// Methods maps method names to factories for CLI-style selection. SparDL
// variants are constructed via NewFactory instead.
var Methods = map[string]Factory{
	"topka":   TopkA,
	"topkdsa": TopkDSA,
	"gtopk":   GTopk,
	"oktopk":  OkTopk,
	"dense":   Dense,
}

// GTopkValid reports whether gTopk is constructible for P workers (the
// algorithm is defined only for power-of-two P). CLI harnesses check it up
// front so an unsupported configuration fails fast or is skipped instead
// of panicking mid-run.
func GTopkValid(p int) error { return sparsecoll.GTopkValid(p) }

// ParseFactory builds a reducer factory from CLI-style settings: method is
// "spardl" or a Methods key; teams/variant/residual configure SparDL and
// are ignored otherwise. Every configuration error — unknown names, gTopk
// on non-power-of-two P, invalid team counts — comes back as an error
// here, before any worker starts.
func ParseFactory(method string, p, teams int, variant, residual string) (Factory, error) {
	if strings.EqualFold(method, "spardl") {
		opts := Options{Teams: teams}
		switch strings.ToLower(variant) {
		case "", "auto":
		case "rsag":
			opts.Variant = RSAG
		case "bsag":
			opts.Variant = BSAG
		default:
			return nil, fmt.Errorf("unknown variant %q", variant)
		}
		switch strings.ToLower(residual) {
		case "", "gres":
		case "pres":
			opts.Residual = PRES
		case "lres":
			opts.Residual = LRES
		default:
			return nil, fmt.Errorf("unknown residual mode %q", residual)
		}
		if err := opts.Validate(p); err != nil {
			return nil, err
		}
		return NewFactory(opts), nil
	}
	f, ok := Methods[strings.ToLower(method)]
	if !ok {
		return nil, fmt.Errorf("unknown method %q", method)
	}
	if strings.EqualFold(method, "gtopk") {
		if err := GTopkValid(p); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Communication layer. Every collective is written against the backend-
// neutral comm.Endpoint contract; two backends implement it.
type (
	// CommEndpoint is the backend-neutral worker handle every reducer
	// accepts: *Endpoint (the simulator's) and livenet's endpoint both
	// satisfy it.
	CommEndpoint = comm.Endpoint
	// Backend runs P workers over one communication substrate
	// (SimBackend or LiveBackend); TrainConfig.Backend selects it.
	Backend = comm.Backend
	// Stats is one worker's traffic/time accounting.
	Stats = comm.Stats
)

// SimBackend returns the deterministic α-β simulator backend for the
// given network profile: virtual time, payloads by reference.
func SimBackend(profile Profile) Backend { return simnet.Backend(profile) }

// LiveBackend returns the real concurrent byte-level backend: P goroutines
// over in-memory channels, every sparse message actually serialized
// through the wire codecs, wall-clock time and real byte counts.
func LiveBackend() Backend { return livenet.NewBackend() }

// Distributed TCP backend (tcpnet): each worker is a separate OS process;
// rank 0 hosts the rendezvous, workers mesh up over real TCP sockets, and
// every message crosses the kernel network stack through the same wire
// codecs livenet uses.
type (
	// TCPConfig describes one worker process's cluster coordinates
	// (rendezvous address, P, rank).
	TCPConfig = tcpnet.Config
	// TCPEndpoint is one worker process's comm.Endpoint over the mesh.
	TCPEndpoint = tcpnet.Endpoint
)

// TCPStart performs rendezvous and full-mesh establishment for this
// process's rank and returns its endpoint.
func TCPStart(cfg TCPConfig) (*TCPEndpoint, error) { return tcpnet.Start(cfg) }

// TCPSelfBackend adapts an established TCP endpoint to the Backend
// contract for the one rank this process runs; the other ranks are
// separate processes. Use it as TrainConfig.Backend inside a worker
// process (cmd/spardl-worker does exactly this).
func TCPSelfBackend(ep *TCPEndpoint) Backend { return tcpnet.SelfBackend(ep) }

// TCPLocalBackend runs P tcpnet workers as goroutines of this one process,
// each with its own endpoint over real loopback TCP sockets — every byte
// still crosses the kernel — so the socket data path is measurable with a
// single command (spardl-bench -tcp-baseline) without forking processes.
func TCPLocalBackend() Backend { return tcpnet.LocalBackend(0) }

// ReserveTCPAddr picks a free loopback host:port for a rendezvous
// listener — the parent-process half of the one-command local demo.
func ReserveTCPAddr() (string, error) { return tcpnet.ReserveLoopbackAddr() }

// TCPChildEnv returns the environment entries that hand a spawned worker
// process its cluster coordinates; TCPConfigFromEnv reads them back.
func TCPChildEnv(rendezvous string, p, rank int) []string {
	return tcpnet.ChildEnv(rendezvous, p, rank)
}

// TCPConfigFromEnv reads the spawned-worker convention; ok is false when
// this process was not launched as a tcpnet worker.
func TCPConfigFromEnv() (cfg TCPConfig, ok bool, err error) { return tcpnet.FromEnv() }

// Deterministic fault injection and elastic membership. A ChaosSchedule is
// a seed-reproducible fault program ("crash:rank=1,iter=2;drop:rank=0,
// peer=2,frame=5"); the same schedule replays bit-identically on livenet
// and tcpnet, which is what the chaos suite pins. Elastic backends survive
// scheduled crashes by re-rendezvousing the survivors — see TrainElastic.
type (
	// ChaosSchedule is a parsed deterministic fault schedule.
	ChaosSchedule = chaos.Schedule
	// ElasticBackend is a Backend that survives worker loss by re-forming
	// the fabric with the survivors (livenet and tcpnet implement it).
	ElasticBackend = comm.ElasticBackend
	// ElasticTrainConfig bounds an elastic run (TrainConfig.Elastic).
	ElasticTrainConfig = train.ElasticConfig
	// RecoveryStat is one survived membership change: the backend's
	// re-rendezvous record plus the trainer's resume point and first-round
	// latency.
	RecoveryStat = train.RecoveryStat
)

// ParseChaos parses a fault-schedule string; see the chaos package grammar
// (kind:key=value,... joined by ';', kinds crash/drop/delay/corrupt/
// partition).
func ParseChaos(s string) (*ChaosSchedule, error) { return chaos.Parse(s) }

// LiveChaosBackend is LiveBackend under a deterministic fault schedule.
func LiveChaosBackend(sched *ChaosSchedule) Backend { return livenet.NewChaosBackend(sched) }

// TCPLocalChaosBackend is TCPLocalBackend under a deterministic fault
// schedule: the same schedule as LiveChaosBackend, replayed over real
// loopback sockets.
func TCPLocalChaosBackend(sched *ChaosSchedule) Backend { return tcpnet.LocalChaosBackend(0, sched) }

// TCPProcBackend adapts one worker process to the elastic contract:
// generation 0 is a normal rendezvous at cfg, and after a poisoned fabric
// the survivors elect the lowest surviving ID as the new rendezvous leader
// and re-mesh (cmd/spardl-worker -elastic uses it).
func TCPProcBackend(cfg TCPConfig) ElasticBackend { return tcpnet.NewProcBackend(cfg) }

// ErrTCPRendezvous classifies TCPStart failures: errors.Is(err,
// ErrTCPRendezvous) means the cluster never formed (nothing listening,
// timeout, torn check-ins past budget) as opposed to a mid-training fault.
var ErrTCPRendezvous = tcpnet.ErrRendezvous

// IsPoisoned reports whether err records a poisoned communication fabric —
// a peer died or a scheduled fault severed a link mid-collective — as
// opposed to a rendezvous failure or a configuration error.
func IsPoisoned(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	return strings.Contains(s, "poisoned fabric") ||
		strings.Contains(s, "severed by schedule") ||
		chaos.IsCrashed(s)
}

// TrainElastic runs one distributed S-SGD session with elastic membership:
// cfg.Backend must be an ElasticBackend; on a scheduled crash the
// survivors re-rendezvous, agree on the resume iteration, restore their
// boundary snapshots and continue with the shrunk membership. The
// trajectory is deterministic for a given seed, schedule and substrate.
func TrainElastic(cfg TrainConfig) (*TrainResult, []RecoveryStat, error) {
	return train.RunElastic(cfg)
}

// TrainTCPElastic is TrainTCPRank's elastic sibling for one worker
// process: the training session runs over TCPProcBackend(tcp), surviving
// scheduled crashes of other processes by re-rendezvousing. Note that in
// multi-process mode each process owns its own TrainResult: after a rank-0
// failover the new rank 0's trajectory covers its own post-recovery
// evaluations (res.TotalTime > 0 marks the process that held rank 0 at the
// end).
func TrainTCPElastic(tcp TCPConfig, cfg TrainConfig) (*TrainResult, []RecoveryStat, error) {
	cfg.P = tcp.P
	cfg.Backend = TCPProcBackend(tcp)
	return train.RunElastic(cfg)
}

// TrainTCPRank is the worker-process body shared by cmd/spardl-worker and
// the children cmd/spardl-train forks: join the mesh described by tcp, run
// one rank of the training session over it (cfg.P and cfg.Backend are set
// from the established endpoint), and tear the endpoint down. onStart, if
// non-nil, runs once the mesh is up (banner printing). The returned rank
// tells the caller whether it owns the cluster's stdout (rank 0 carries
// the trajectory); a poisoned fabric or worker panic comes back as an
// error so CLI workers can exit cleanly instead of dumping a stack.
func TrainTCPRank(tcp TCPConfig, cfg TrainConfig, onStart func(rank, p int)) (res *TrainResult, rank int, err error) {
	ep, err := TCPStart(tcp)
	if err != nil {
		return nil, 0, err
	}
	defer ep.Close()
	rank = ep.Rank()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rank %d failed: %v", rank, r)
		}
	}()
	if onStart != nil {
		onStart(ep.Rank(), ep.P())
	}
	cfg.P = ep.P()
	cfg.Backend = TCPSelfBackend(ep)
	return Train(cfg), rank, nil
}

// ForkTCPWorkers is the one-command local demo helper: it reserves a
// loopback rendezvous address and re-executes the current binary once per
// rank with the original arguments plus the cluster coordinates in the
// environment (TCPConfigFromEnv reads them back in the children).
// configure, if non-nil, adjusts each command (stdio, extra env) before it
// starts. If any rank fails to spawn, the already-started workers are
// killed rather than left to time out against a rendezvous that will
// never complete; otherwise ForkTCPWorkers waits for every worker and
// returns the first failure.
func ForkTCPWorkers(p int, configure func(rank int, cmd *exec.Cmd)) error {
	addr, err := ReserveTCPAddr()
	if err != nil {
		return err
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	cmds := make([]*exec.Cmd, p)
	for rank := 0; rank < p; rank++ {
		cmd := exec.Command(self, os.Args[1:]...)
		cmd.Env = append(os.Environ(), TCPChildEnv(addr, p, rank)...)
		cmd.Stderr = os.Stderr
		if configure != nil {
			configure(rank, cmd)
		}
		if err := cmd.Start(); err != nil {
			for _, started := range cmds[:rank] {
				started.Process.Kill()
				started.Wait()
			}
			return fmt.Errorf("spawning worker %d: %w", rank, err)
		}
		cmds[rank] = cmd
	}
	var firstErr error
	for rank, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker process %d: %w", rank, err)
		}
	}
	return firstErr
}

// Network / cluster simulation.
type (
	// Fabric is the simulated α-β network connecting P workers.
	Fabric = simnet.Fabric
	// Endpoint is one worker's handle on the simulated fabric (virtual
	// clock, traffic statistics).
	Endpoint = simnet.Endpoint
	// Profile is a network profile (latency α seconds, β seconds/byte).
	Profile = simnet.Profile
	// Report aggregates per-worker statistics of a cluster run.
	Report = comm.Report
)

// Built-in network profiles.
var (
	Ethernet = simnet.Ethernet
	RDMA     = simnet.RDMA
)

// NewFabric creates a simulated network for p workers.
func NewFabric(p int, profile Profile) *Fabric { return simnet.New(p, profile) }

// RunCluster executes worker(rank, endpoint) on p goroutines over a fresh
// simulated fabric and reports per-worker α-β costs.
func RunCluster(p int, profile Profile, worker func(rank int, ep *Endpoint)) *Report {
	return simnet.Run(p, profile, worker)
}

// RunWorkers executes worker(rank, ep) concurrently on the provided
// endpoints (all from one fabric) and waits for completion, without
// building a report. Steady-state loops use it to keep the fabric,
// endpoints and reducers alive across iterations — the allocation-free
// hot path the benchmarks measure.
func RunWorkers(eps []*Endpoint, worker func(rank int, ep *Endpoint)) {
	simnet.RunOn(eps, worker)
}

// ReduceBench is the canonical steady-state hot-path workload: one SparDL
// synchronization per Iterate over a persistent fabric with persistent
// reducers and gradient/result buffers, exactly as a training loop holds
// them. BenchmarkReduceOnce and spardl-bench's -reduce-baseline both run
// THIS harness, so the committed BENCH_reduce.json and the CI
// bench-regression gate measure the identical workload by construction.
type ReduceBench struct {
	grads, bufs, outs [][]float32
	eps               []*Endpoint
	reducers          []*SparDL
}

// NewReduceBench builds the workload: deterministic per-worker gradients,
// one reducer per worker, everything preallocated. It runs two warm-up
// synchronizations so the arenas and pools are filled through a full
// double-buffer (quarantine) cycle before the first timed Iterate.
func NewReduceBench(p, n, k int, mode WireMode) (*ReduceBench, error) {
	rb := &ReduceBench{
		grads: make([][]float32, p), bufs: make([][]float32, p),
		outs: make([][]float32, p), eps: make([]*Endpoint, p),
		reducers: make([]*SparDL, p),
	}
	fabric := NewFabric(p, Ethernet)
	for w := 0; w < p; w++ {
		rb.grads[w] = make([]float32, n)
		for i := range rb.grads[w] {
			rb.grads[w][i] = float32((i*7+w)%101) / 100
		}
		rb.bufs[w] = make([]float32, n)
		rb.outs[w] = make([]float32, n)
		rb.eps[w] = fabric.Endpoint(w)
		r, err := New(p, w, n, k, Options{Wire: mode})
		if err != nil {
			return nil, err
		}
		rb.reducers[w] = r
	}
	rb.Iterate()
	rb.Iterate()
	return rb, nil
}

// Iterate runs one cluster-wide steady-state synchronization.
func (rb *ReduceBench) Iterate() {
	RunWorkers(rb.eps, func(rank int, ep *Endpoint) {
		copy(rb.bufs[rank], rb.grads[rank])
		rb.reducers[rank].ReduceInto(ep, rb.bufs[rank], rb.outs[rank])
	})
}

// RunLive executes worker(rank, endpoint) on p goroutines over a fresh
// livenet fabric — the real concurrent transport — and reports per-worker
// wall-clock costs and real serialized byte counts.
func RunLive(p int, worker func(rank int, ep CommEndpoint)) *Report {
	return livenet.Run(p, worker)
}

// Distributed training.
type (
	// TrainConfig configures a distributed S-SGD session.
	TrainConfig = train.Config
	// TrainResult is the trajectory and cost summary of a session.
	TrainResult = train.Result
	// Case is one of the paper's seven deep-learning cases.
	Case = train.Case
	// PipelineConfig enables layer-wise bucketed synchronization
	// (TrainConfig.Pipeline): gradients fuse back-to-front into
	// ~BucketBytes buckets whose sparse all-reduces overlap the remaining
	// backward pass; TrainResult reports ExposedComm and OverlapSaved.
	PipelineConfig = pipeline.Config
)

// Train runs one distributed S-SGD session on the simulated cluster.
func Train(cfg TrainConfig) *TrainResult { return train.Run(cfg) }

// FprintTrajectory writes the standard CLI trajectory table — iteration,
// clock, held-out metric, and the one-line summary — shared by
// spardl-train and spardl-worker so the two binaries' rank-0 output cannot
// drift apart. Callers append their own per-backend breakdown line.
func FprintTrajectory(w io.Writer, c *Case, res *TrainResult) {
	metric := "loss"
	if c.Accuracy {
		metric = "accuracy"
	}
	fmt.Fprintf(w, "\n%-8s  %-12s  %-10s\n", "iter", "time(s)", metric)
	for _, pt := range res.Points {
		fmt.Fprintf(w, "%-8d  %-12.3f  %-10.4f\n", pt.Iter, pt.Time, pt.Metric)
	}
	fmt.Fprintf(w, "\n%s\n", res)
}

// Cases lists the paper's seven cases (Table II) as scaled stand-ins.
func Cases() []*Case { return train.Cases }

// CaseByID returns the case with the given Table II number (1-7).
func CaseByID(id int) *Case { return train.CaseByID(id) }

// Experiments.
type (
	// Experiment reproduces one table or figure of the paper.
	Experiment = expt.Experiment
	// ResultTable is a rendered experiment artifact.
	ResultTable = expt.Table
)

// Experiment scale presets.
const (
	Quick     = expt.Quick
	FullScale = expt.Full
)

// Experiments returns every registered experiment, sorted by id.
func Experiments() []*Experiment { return expt.All() }

// ExperimentByID finds one experiment (e.g. "fig9", "table1").
func ExperimentByID(id string) (*Experiment, error) { return expt.ByID(id) }
