package spardl_test

import (
	"testing"

	"spardl"
)

// TestFacadeQuickstart is the README's quick-start path: eight workers
// all-reduce one sparse gradient and end up bit-identical.
func TestFacadeQuickstart(t *testing.T) {
	const p, n, k = 8, 4000, 40
	outs := make([][]float32, p)
	spardl.RunCluster(p, spardl.Ethernet, func(rank int, ep *spardl.Endpoint) {
		r, err := spardl.New(p, rank, n, k, spardl.Options{})
		if err != nil {
			t.Error(err)
			return
		}
		grad := make([]float32, n)
		for i := range grad {
			grad[i] = float32((rank+1)*(i%17)) / 100
		}
		outs[rank] = r.Reduce(ep, grad)
	})
	for w := 1; w < p; w++ {
		for i := range outs[0] {
			if outs[w][i] != outs[0][i] {
				t.Fatalf("worker %d disagrees at %d", w, i)
			}
		}
	}
}

func TestFacadeBaselines(t *testing.T) {
	for name, f := range spardl.Methods {
		if name == "gtopk" {
			continue // power-of-two only; exercised below
		}
		r := f(6, 0, 100, 10)
		if r.Name() == "" {
			t.Fatalf("%s: empty reducer name", name)
		}
	}
	if r := spardl.Methods["gtopk"](8, 0, 100, 10); r.Name() != "gTopk" {
		t.Fatal("gtopk factory broken")
	}
}

func TestFacadeCases(t *testing.T) {
	if len(spardl.Cases()) != 7 {
		t.Fatalf("want 7 cases")
	}
	if spardl.CaseByID(2).Name != "VGG19/CIFAR100" {
		t.Fatal("case registry broken")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(spardl.Experiments()) < 14 {
		t.Fatalf("experiment registry too small: %d", len(spardl.Experiments()))
	}
	if _, err := spardl.ExperimentByID("fig9"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeParseFactory(t *testing.T) {
	if _, err := spardl.ParseFactory("spardl", 6, 3, "bsag", "gres"); err != nil {
		t.Fatal(err)
	}
	if _, err := spardl.ParseFactory("gtopk", 8, 1, "", ""); err != nil {
		t.Fatal(err)
	}
	// Configuration errors must come back as errors before any worker runs.
	for _, bad := range []func() (spardl.Factory, error){
		func() (spardl.Factory, error) { return spardl.ParseFactory("gtopk", 6, 1, "", "") },
		func() (spardl.Factory, error) { return spardl.ParseFactory("spardl", 6, 3, "rsag", "") },
		func() (spardl.Factory, error) { return spardl.ParseFactory("spardl", 6, 4, "", "") },
		func() (spardl.Factory, error) { return spardl.ParseFactory("nosuch", 6, 1, "", "") },
		func() (spardl.Factory, error) { return spardl.ParseFactory("spardl", 6, 1, "nosuch", "") },
	} {
		if _, err := bad(); err == nil {
			t.Fatal("expected a configuration error")
		}
	}
}

// TestFacadeTCP runs the quick-start workload over the tcpnet facade with
// the P ranks as goroutines of this process (the separate-process axis is
// pinned by internal/tcpnet's forked equivalence suite).
func TestFacadeTCP(t *testing.T) {
	const p, n, k = 4, 2000, 20
	addr, err := spardl.ReserveTCPAddr()
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]float32, p)
	done := make(chan error, p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			ep, err := spardl.TCPStart(spardl.TCPConfig{Rendezvous: addr, P: p, Rank: rank})
			if err != nil {
				done <- err
				return
			}
			defer ep.Close()
			spardl.TCPSelfBackend(ep).Run(p, func(rank int, cep spardl.CommEndpoint) {
				r, err := spardl.New(p, rank, n, k, spardl.Options{Wire: spardl.WireEncoded})
				if err != nil {
					done <- err
					return
				}
				grad := make([]float32, n)
				for i := range grad {
					grad[i] = float32((rank+1)*(i%17)) / 100
				}
				outs[rank] = r.Reduce(cep, grad)
			})
			done <- nil
		}(rank)
	}
	for i := 0; i < p; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for w := 1; w < p; w++ {
		for i := range outs[0] {
			if outs[w][i] != outs[0][i] {
				t.Fatalf("worker %d disagrees at %d", w, i)
			}
		}
	}
}

func TestFacadeTrain(t *testing.T) {
	res := spardl.Train(spardl.TrainConfig{
		Case: spardl.CaseByID(1), P: 4, KRatio: 0.01,
		Network: spardl.Ethernet, Factory: spardl.NewFactory(spardl.Options{Teams: 2}),
		Iters: 10, Seed: 1,
	})
	if res.Method != "SparDL(R-SAG,d=2)" || res.TotalTime <= 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}
