// Langmodel trains the paper's Case 6 (an LSTM language model on a
// PTB-like Markov corpus) and shows the effect of Spar-All-Gather team
// synchronization: d=1 (plain SparDL) versus B-SAG with d teams, the
// latency/bandwidth trade-off of Section III-D.
package main

import (
	"fmt"

	"spardl"
)

func main() {
	c := spardl.CaseByID(6)
	const p = 14
	fmt.Printf("training %s (%s) on %d workers, k/n = 1%%\n\n", c.Name, c.Task, p)

	for _, cfg := range []struct {
		label string
		opts  spardl.Options
	}{
		{"SparDL d=1", spardl.Options{}},
		{"SparDL B-SAG d=7", spardl.Options{Teams: 7, Variant: spardl.BSAG}},
	} {
		res := spardl.Train(spardl.TrainConfig{
			Case: c, P: p, KRatio: 0.01,
			Network: spardl.Ethernet, Factory: spardl.NewFactory(cfg.opts),
			Iters: 90, Seed: 6, EvalEvery: 30,
			// Scale β to the paper-size model so the communication share of
			// each update is realistic for a 66M-parameter LSTM.
			PaperScaleComm: true,
		})
		fmt.Printf("%s:\n", res.Method)
		for _, pt := range res.Points {
			fmt.Printf("  t=%7.2fs  loss=%.4f\n", pt.Time, pt.Metric)
		}
		fmt.Printf("  per-update: %.4fs (comm %.4fs, comp %.4fs)\n\n",
			res.PerUpdateTime, res.CommTime, res.CompTime)
	}

	fmt.Println("B-SAG trades a little selection fidelity for fewer latency")
	fmt.Println("rounds; on latency-bound networks the d=7 configuration")
	fmt.Println("finishes each update faster at comparable loss.")
}
