// Quickstart: eight simulated workers synchronize one sparse gradient with
// SparDL and print the α-β cost each worker paid. This is the smallest
// possible tour of the public API: a fabric, one reducer per worker, one
// Reduce call — plus, at the end, the one-knob upgrade to the layer-wise
// bucketed pipeline that overlaps communication with the backward pass.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spardl"
)

func main() {
	const (
		p = 8     // workers
		n = 10000 // dense gradient length
		k = 100   // global sparse budget (k/n = 1%)
	)

	outs := make([][]float32, p)
	report := spardl.RunCluster(p, spardl.Ethernet, func(rank int, ep *spardl.Endpoint) {
		reducer, err := spardl.New(p, rank, n, k, spardl.Options{})
		if err != nil {
			log.Fatal(err)
		}

		// Every worker contributes its own gradient (here: random values).
		rng := rand.New(rand.NewSource(int64(rank)))
		grad := make([]float32, n)
		for i := range grad {
			grad[i] = float32(rng.NormFloat64())
		}

		outs[rank] = reducer.Reduce(ep, grad)
	})

	// All replicas must end bit-identical — verify.
	for w := 1; w < p; w++ {
		for i := range outs[0] {
			if outs[w][i] != outs[0][i] {
				log.Fatalf("worker %d disagrees at index %d", w, i)
			}
		}
	}
	nonzero := 0
	for _, v := range outs[0] {
		if v != 0 {
			nonzero++
		}
	}

	fmt.Printf("synchronized %d workers; global gradient holds %d of %d entries (%.1f%%)\n",
		p, nonzero, n, 100*float64(nonzero)/float64(n))
	fmt.Printf("virtual completion time: %.3fms\n", report.Time*1e3)
	for rank, s := range report.PerWorker {
		fmt.Printf("  worker %d: %d rounds, %d bytes received\n", rank, s.Rounds, s.BytesRecv)
	}
	fmt.Printf("cost model check: 2⌈log₂P⌉ = %d rounds, 4k(P-1)/P = %d wire elements\n",
		2*3, 4*k*(p-1)/p)

	// The same reduction on the live backend: real goroutines exchanging
	// real bytes — every sparse message is encoded and decoded through the
	// wire codecs — timed on the wall clock. The result must match the
	// simulator bit for bit; only the clock's meaning changes.
	liveOuts := make([][]float32, p)
	liveReport := spardl.RunLive(p, func(rank int, ep spardl.CommEndpoint) {
		reducer, err := spardl.New(p, rank, n, k, spardl.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(rank)))
		grad := make([]float32, n)
		for i := range grad {
			grad[i] = float32(rng.NormFloat64())
		}
		liveOuts[rank] = reducer.Reduce(ep, grad)
	})
	for w := 0; w < p; w++ {
		for i := range outs[w] {
			if liveOuts[w][i] != outs[w][i] {
				log.Fatalf("live backend diverges from simulator at worker %d index %d", w, i)
			}
		}
	}
	fmt.Printf("\nlive backend agrees bit-for-bit; real wall time %.3fms, %d bytes actually serialized\n",
		liveReport.Time*1e3, liveReport.TotalBytesRecv())

	// Pipelined & bucketed synchronization: the same training session with
	// the monolithic all-reduce versus per-layer buckets that launch each
	// sparse all-reduce as soon as its backward slices finish. The pipeline
	// is one knob on TrainConfig; ExposedComm is the communication that
	// still delayed the iteration, OverlapSaved what hid under compute.
	train := func(pl *spardl.PipelineConfig) *spardl.TrainResult {
		return spardl.Train(spardl.TrainConfig{
			Case: spardl.CaseByID(1), P: 4, KRatio: 0.01,
			Network: spardl.Ethernet, Factory: spardl.NewFactory(spardl.Options{}),
			Iters: 6, Seed: 7, PaperScaleComm: true,
			Pipeline: pl,
		})
	}
	mono := train(nil)
	piped := train(&spardl.PipelineConfig{}) // BucketBytes 0: one bucket per layer
	fmt.Printf("\npipelined synchronization (%d buckets):\n", piped.Buckets)
	fmt.Printf("  monolithic: per-update %.4fs, exposed comm %.4fs\n", mono.PerUpdateTime, mono.ExposedComm)
	fmt.Printf("  per-layer:  per-update %.4fs, exposed comm %.4fs (%.0f%% hidden under backprop)\n",
		piped.PerUpdateTime, piped.ExposedComm, 100*piped.OverlapSaved/(piped.OverlapSaved+piped.ExposedComm))
}
