// Quickstart: eight simulated workers synchronize one sparse gradient with
// SparDL and print the α-β cost each worker paid. This is the smallest
// possible tour of the public API: a fabric, one reducer per worker, one
// Reduce call.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spardl"
)

func main() {
	const (
		p = 8     // workers
		n = 10000 // dense gradient length
		k = 100   // global sparse budget (k/n = 1%)
	)

	outs := make([][]float32, p)
	report := spardl.RunCluster(p, spardl.Ethernet, func(rank int, ep *spardl.Endpoint) {
		reducer, err := spardl.New(p, rank, n, k, spardl.Options{})
		if err != nil {
			log.Fatal(err)
		}

		// Every worker contributes its own gradient (here: random values).
		rng := rand.New(rand.NewSource(int64(rank)))
		grad := make([]float32, n)
		for i := range grad {
			grad[i] = float32(rng.NormFloat64())
		}

		outs[rank] = reducer.Reduce(ep, grad)
	})

	// All replicas must end bit-identical — verify.
	for w := 1; w < p; w++ {
		for i := range outs[0] {
			if outs[w][i] != outs[0][i] {
				log.Fatalf("worker %d disagrees at index %d", w, i)
			}
		}
	}
	nonzero := 0
	for _, v := range outs[0] {
		if v != 0 {
			nonzero++
		}
	}

	fmt.Printf("synchronized %d workers; global gradient holds %d of %d entries (%.1f%%)\n",
		p, nonzero, n, 100*float64(nonzero)/float64(n))
	fmt.Printf("virtual completion time: %.3fms\n", report.Time*1e3)
	for rank, s := range report.PerWorker {
		fmt.Printf("  worker %d: %d rounds, %d bytes received\n", rank, s.Rounds, s.BytesRecv)
	}
	fmt.Printf("cost model check: 2⌈log₂P⌉ = %d rounds, 4k(P-1)/P = %d wire elements\n",
		2*3, 4*k*(p-1)/p)
}
