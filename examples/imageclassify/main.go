// Imageclassify trains the paper's Case 1 (VGG-16-like on a CIFAR-10-like
// task) on 14 simulated workers with SparDL and with Ok-Topk, and prints
// both accuracy-versus-time trajectories — a miniature of the paper's
// Fig. 9 workflow.
package main

import (
	"fmt"

	"spardl"
)

func main() {
	c := spardl.CaseByID(1)
	fmt.Printf("training %s (%s) on 14 workers, k/n = 1%%\n\n", c.Name, c.Task)

	run := func(name string, factory spardl.Factory) *spardl.TrainResult {
		return spardl.Train(spardl.TrainConfig{
			Case: c, P: 14, KRatio: 0.01,
			Network: spardl.Ethernet, Factory: factory,
			Iters: 120, Seed: 42, EvalEvery: 20,
			// Scale β to the paper-size model (14.7M parameters) so the
			// communication share of each update matches Fig. 8.
			PaperScaleComm: true,
		})
	}

	results := []*spardl.TrainResult{
		run("OkTopk", spardl.OkTopk),
		run("SparDL", spardl.NewFactory(spardl.Options{})),
	}

	for _, r := range results {
		fmt.Printf("%s:\n", r.Method)
		for _, pt := range r.Points {
			fmt.Printf("  t=%7.2fs  accuracy=%.3f\n", pt.Time, pt.Metric)
		}
		fmt.Printf("  per-update: %.4fs (comm %.4fs, comp %.4fs)\n\n",
			r.PerUpdateTime, r.CommTime, r.CompTime)
	}

	speedup := results[0].CommTime / results[1].CommTime
	fmt.Printf("SparDL communication speedup over Ok-Topk: %.2fx\n", speedup)
}
