// Tuneteams implements the paper's recommended procedure for selecting the
// optimal team count d (Section III-D / Fig. 15): run one epoch for every
// divisor of P, pick the d with the least per-epoch time, then train with
// it. Per-epoch times are stable across epochs, so one epoch suffices.
package main

import (
	"fmt"

	"spardl"
)

func main() {
	c := spardl.CaseByID(1)
	const (
		p          = 12
		epochIters = 40
		kRatio     = 0.01
	)
	fmt.Printf("selecting the optimal team count d for %s on %d workers\n\n", c.Name, p)

	type candidate struct {
		label string
		opts  spardl.Options
	}
	var candidates []candidate
	for d := 1; d <= p; d++ {
		if p%d != 0 {
			continue
		}
		opts := spardl.Options{Teams: d}
		label := fmt.Sprintf("d=%d", d)
		if d > 1 {
			if d&(d-1) == 0 {
				label += " (R-SAG)"
			} else {
				label += " (B-SAG)"
			}
		}
		candidates = append(candidates, candidate{label, opts})
	}

	best, bestTime := candidates[0], 0.0
	fmt.Printf("%-16s %s\n", "config", "first-epoch time")
	for _, cand := range candidates {
		res := spardl.Train(spardl.TrainConfig{
			Case: c, P: p, KRatio: kRatio,
			Network: spardl.Ethernet, Factory: spardl.NewFactory(cand.opts),
			Iters: epochIters, Seed: 3,
		})
		fmt.Printf("%-16s %.3fs\n", cand.label, res.TotalTime)
		if bestTime == 0 || res.TotalTime < bestTime {
			best, bestTime = cand, res.TotalTime
		}
	}

	fmt.Printf("\noptimal configuration: %s — continuing training with it\n\n", best.label)
	res := spardl.Train(spardl.TrainConfig{
		Case: c, P: p, KRatio: kRatio,
		Network: spardl.Ethernet, Factory: spardl.NewFactory(best.opts),
		Iters: 3 * epochIters, Seed: 3, EvalEvery: epochIters,
	})
	for _, pt := range res.Points {
		fmt.Printf("  t=%7.2fs  accuracy=%.3f\n", pt.Time, pt.Metric)
	}
	fmt.Printf("\n%s\n", res)
}
